//! # sgp-partition
//!
//! Every graph-partitioning algorithm evaluated by *"Experimental
//! Analysis of Streaming Algorithms for Graph Partitioning"* (Pacaci &
//! Özsu, SIGMOD 2019), implemented from scratch:
//!
//! * **Edge-cut SGP on vertex streams** (§4.1.1): hash (`ECR`),
//!   Linear Deterministic Greedy ([`edge_cut::Ldg`]), FENNEL
//!   ([`edge_cut::Fennel`]), and their re-streaming variants.
//! * **Vertex-cut SGP on edge streams** (§4.2.2): hash (`VCR`),
//!   Degree-Based Hashing ([`vertex_cut::Dbh`]), constrained Grid
//!   ([`vertex_cut::GridConstrained`]), PowerGraph oblivious greedy
//!   ([`vertex_cut::PowerGraphGreedy`]) and HDRF ([`vertex_cut::Hdrf`]).
//! * **Hybrid-cut** (§4.3): PowerLyra's hybrid random (`HCR`) and Ginger
//!   (`HG`).
//! * **Offline baseline**: a from-scratch multilevel partitioner
//!   ([`metis::MultilevelPartitioner`]) in the METIS mould (heavy-edge
//!   matching, greedy growing, FM boundary refinement), with optional
//!   vertex weights for the paper's workload-aware experiment (Fig. 8).
//!
//! All algorithms produce a [`Partitioning`], a unified edge-disjoint
//! placement plus (for vertex-disjoint models) the vertex ownership map,
//! following the paper's Appendix-B construction that makes edge-cut and
//! vertex-cut results directly comparable on one engine.
//!
//! [`metrics`] computes the paper's structural quality measures
//! (replication factor, edge-cut ratio, load imbalance) together with the
//! closed-form expectations used as property-test oracles.
//!
//! Every algorithm runs on the incremental core in [`streaming`] —
//! `init(k, config) → ingest(chunk) → seal() → Partitioning` — and
//! [`loaders`] splits one logical stream across deterministic parallel
//! loaders with periodic state synchronization, turning Table 1's
//! "parallelization" column into measurable behaviour. [`exec`] runs the
//! same split on real OS threads — byte-identical to the modelled path,
//! with all thread/channel primitives confined there by the
//! `thread-discipline` lint.
//!
//! The elasticity layer (DESIGN.md §11) builds on that core:
//! [`snapshot`] serializes a machine's run-varying state in a
//! schema-versioned canonical format such that restore-then-continue is
//! bit-identical to an uninterrupted run, and [`migration`] computes
//! bounded-movement rebalance plans when the cluster gains or loses
//! machines.
//!
//! The dynamic-graph tier (DESIGN.md §12) adds the multi-pass and
//! buffered streaming models on the same machine lifecycle: 2PS
//! two-phase edge partitioning ([`two_phase::TwoPhase`]), a bounded
//! look-ahead window on the [`streaming::StreamingPartitioner`] facade
//! (`W = 1` degenerates exactly to one-pass), and restreaming over a
//! prior assignment with bounded movement ([`dynamic`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod assignment;
pub mod attribute;
pub mod config;
pub mod decisions;
pub mod dynamic;
pub mod edge_cut;
pub mod edge_stream_cut;
pub mod exec;
pub mod hetero;
pub mod hybrid;
mod kernels;
pub mod loaders;
pub mod metis;
pub mod metrics;
pub mod migration;
pub mod parallel;
pub mod registry;
pub mod snapshot;
pub mod streaming;
pub mod two_phase;
pub mod vertex_cut;

pub use assignment::{CutModel, PartitionId, Partitioning};
pub use config::PartitionerConfig;
pub use decisions::DecisionStats;
pub use dynamic::{cut_edges, restream_rounds, restream_rounds_traced, RestreamOutcome};
pub use exec::{partition_threaded, partition_threaded_traced};
pub use loaders::{partition_multi_loader, LoaderConfig};
pub use migration::{
    plan_rebalance, MigrationConfig, MigrationPlan, MigrationStrategy, VertexMove,
};
pub use registry::{partition, partition_traced, Algorithm};
pub use snapshot::{SnapshotError, SNAPSHOT_SCHEMA_VERSION};
pub use streaming::{partition_chunked, StreamInput, StreamingPartitioner, DEFAULT_CHUNK};
