//! Bounded-movement rebalance after a cluster membership change
//! (DESIGN.md §11).
//!
//! When a machine joins (scale-out), leaves (scale-in), or dies, the
//! vertex master map that the distributed store was built from no
//! longer matches the live cluster: dead partitions still own data, and
//! a fresh partition owns nothing. [`plan_rebalance`] computes the
//! repair as an explicit move list, following the
//! repartitioning-with-movement-budget framing of Le Merrer et al.
//! (arXiv 1310.8211): restore the balance constraint while moving as
//! few vertices as possible, and never move more than the configured
//! budget even when that leaves the constraint unmet.
//!
//! The plan is pure data — the DES layer (`sgp-db`) charges it to the
//! cost model (each move ships the vertex record plus its adjacency)
//! and replays it during the recovery window, so migration cost shows
//! up in availability and tail latency, not as free teleportation.
//!
//! Move selection is greedy highest-gain: mandatory evacuations and
//! balance moves both prefer the destination keeping the most
//! neighbours local (the LDG-style `|P_i ∩ N(v)|` affinity), with
//! deterministic load → index tie-breaks, so the same inputs always
//! yield byte-identical plans.

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::dynamic::restream_rounds;
use crate::edge_cut::UNASSIGNED;
use crate::registry::Algorithm;
use sgp_graph::{Graph, StreamOrder};

/// How [`plan_rebalance`] chooses the post-migration owner map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStrategy {
    /// The PR 7 greedy planner: mandatory evacuations plus highest-gain
    /// balance moves, one vertex at a time.
    Greedy,
    /// Restream the whole graph over the current assignment
    /// ([`crate::dynamic::restream_rounds`]) and diff the result into a
    /// budget-truncated move list — the Le Merrer et al. bounded-
    /// movement repartitioning model (DESIGN.md §12).
    Restream {
        /// The vertex-stream algorithm to restream with. Edge-stream
        /// algorithms cannot restream; the planner falls back to
        /// [`MigrationStrategy::Greedy`] for them.
        algorithm: Algorithm,
        /// Stream order of each restreaming pass.
        order: StreamOrder,
        /// Maximum restreaming rounds.
        rounds: usize,
    },
}

/// Knobs for [`plan_rebalance`].
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Maximum number of vertices the plan may move. The planner stops
    /// (reporting `balance_restored = false`) rather than exceed it.
    pub budget: usize,
    /// Balance slack β for the post-migration constraint: no live
    /// partition may hold more than `β · n / live` vertices (Eq. (1) of
    /// the paper, applied to the shrunk or grown cluster).
    pub balance_slack: f64,
    /// Planning strategy (greedy move selection by default).
    pub strategy: MigrationStrategy,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            budget: usize::MAX,
            // sgp-lint: allow(no-float-accounting): balance slack is a config constant mirroring the paper's β, not simulated-time accounting
            balance_slack: 1.1,
            strategy: MigrationStrategy::Greedy,
        }
    }
}

/// One planned vertex relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexMove {
    /// The vertex to relocate.
    pub vertex: u32,
    /// Partition it currently lives on.
    pub from: PartitionId,
    /// Partition it moves to.
    pub to: PartitionId,
}

/// The output of [`plan_rebalance`]: an ordered move list plus the
/// accounting the DES layer charges to the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Relocations in application order (evacuations first, then
    /// balance moves).
    pub moves: Vec<VertexMove>,
    /// Records shipped: one vertex record plus one adjacency entry per
    /// incident edge, summed over the move list.
    pub data_moved: u64,
    /// Whether the plan leaves every dead partition empty and every
    /// live partition within the balance cap. `false` means the budget
    /// ran out first.
    pub balance_restored: bool,
    /// Per-partition vertex loads after applying the plan.
    pub loads_after: Vec<u64>,
}

impl MigrationPlan {
    /// The new owner map after applying the plan to `owner`.
    pub fn apply(&self, owner: &[PartitionId]) -> Vec<PartitionId> {
        let mut out = owner.to_vec();
        for mv in &self.moves {
            if let Some(slot) = out.get_mut(mv.vertex as usize) {
                *slot = mv.to;
            }
        }
        out
    }
}

/// Affinity of `v` for partition `p` minus its affinity for `q`: how
/// many neighbours (either direction) it would gain locality with by
/// moving. Higher is better for cut quality.
fn gain(g: &Graph, owner: &[PartitionId], v: u32, from: PartitionId, to: PartitionId) -> i64 {
    let mut score = 0i64;
    for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
        let p = owner[w as usize];
        if p == to {
            score += 1;
        } else if p == from {
            score -= 1;
        }
    }
    score
}

/// Plans a bounded-movement rebalance of `owner` onto the `live`
/// partitions (`live.len()` is the post-change partition count; growing
/// the cluster means passing a longer `live` with the new slots `true`
/// and no vertices mapped to them yet).
///
/// Guarantees, pinned by the root proptests:
/// * `moves.len() <= cfg.budget`, always;
/// * the plan is deterministic in its inputs (byte-identical re-plans);
/// * when the budget suffices and the strategy is greedy,
///   `balance_restored` is `true`: dead partitions end empty and every
///   live load is within the cap.
pub fn plan_rebalance(
    g: &Graph,
    owner: &[PartitionId],
    live: &[bool],
    cfg: &MigrationConfig,
) -> MigrationPlan {
    match cfg.strategy {
        MigrationStrategy::Greedy => plan_rebalance_greedy(g, owner, live, cfg),
        MigrationStrategy::Restream { algorithm, order, rounds } => {
            plan_rebalance_restream(g, owner, live, cfg, algorithm, order, rounds)
        }
    }
}

/// The greedy planner (the original PR 7 path): mandatory evacuations
/// in vertex order, then highest-gain balance moves.
fn plan_rebalance_greedy(
    g: &Graph,
    owner: &[PartitionId],
    live: &[bool],
    cfg: &MigrationConfig,
) -> MigrationPlan {
    let k = live.len();
    let n = owner.len();
    let live_count = live.iter().filter(|&&l| l).count();
    let mut current = owner.to_vec();
    let mut loads = vec![0u64; k];
    for &p in &current {
        if let Some(slot) = loads.get_mut(p as usize) {
            *slot += 1;
        }
    }
    let mut plan = MigrationPlan {
        moves: Vec::new(),
        data_moved: 0,
        balance_restored: false,
        loads_after: Vec::new(),
    };
    if live_count == 0 {
        // Nothing can host data; the only "restored" cluster is an
        // empty one.
        plan.balance_restored = n == 0;
        plan.loads_after = loads;
        return plan;
    }
    // sgp-lint: allow(no-float-accounting): the balance cap is a config-derived threshold, not simulated-time accounting
    let cap = ((cfg.balance_slack * n as f64 / live_count as f64).ceil() as u64).max(1);

    // Chooses where `v` should go: the live partition with the best
    // (affinity, load, index) ordering among those under the cap, or
    // the least-loaded live partition when every one is full.
    let pick_target = |current: &[PartitionId], loads: &[u64], v: u32, from: PartitionId| {
        let mut best: Option<(i64, u64, PartitionId)> = None;
        let mut fallback: Option<(u64, PartitionId)> = None;
        for p in 0..k {
            if !live[p] || p as PartitionId == from {
                continue;
            }
            let load = loads[p];
            if fallback.is_none_or(|(l, _)| load < l) {
                fallback = Some((load, p as PartitionId));
            }
            if load >= cap {
                continue;
            }
            let affinity = gain(g, current, v, from, p as PartitionId);
            let better = match best {
                None => true,
                Some((a, l, _)) => affinity > a || (affinity == a && load < l),
            };
            if better {
                best = Some((affinity, load, p as PartitionId));
            }
        }
        best.map(|(_, _, p)| p).or(fallback.map(|(_, p)| p))
    };

    let apply = |plan: &mut MigrationPlan,
                 current: &mut Vec<PartitionId>,
                 loads: &mut Vec<u64>,
                 v: u32,
                 to: PartitionId| {
        let from = current[v as usize];
        plan.moves.push(VertexMove { vertex: v, from, to });
        plan.data_moved += 1 + g.degree(v) as u64;
        if let Some(slot) = loads.get_mut(from as usize) {
            *slot -= 1;
        }
        loads[to as usize] += 1;
        current[v as usize] = to;
    };

    // Phase 1 — mandatory evacuation of dead partitions, in vertex
    // order (the stream-friendly order a recovering store reads its
    // log in).
    let mut budget_hit = false;
    for v in 0..n as u32 {
        let from = current[v as usize];
        if (from as usize) < k && live[from as usize] {
            continue;
        }
        if plan.moves.len() >= cfg.budget {
            budget_hit = true;
            break;
        }
        if let Some(to) = pick_target(&current, &loads, v, from) {
            apply(&mut plan, &mut current, &mut loads, v, to);
        }
    }

    // Phase 2 — greedy highest-gain balance moves: repeatedly pull the
    // best vertex off the most-loaded live partition until every load
    // is within the cap (or the budget runs out).
    while !budget_hit {
        let src = (0..k)
            .filter(|&p| live[p] && loads[p] > cap)
            .max_by_key(|&p| (loads[p], std::cmp::Reverse(p)));
        let Some(src) = src else {
            break;
        };
        if plan.moves.len() >= cfg.budget {
            break;
        }
        // Best (gain, lowest id) vertex currently on `src`.
        let mut choice: Option<(i64, u32, PartitionId)> = None;
        for v in 0..n as u32 {
            if current[v as usize] != src as PartitionId {
                continue;
            }
            let Some(to) = pick_target(&current, &loads, v, src as PartitionId) else {
                continue;
            };
            let score = gain(g, &current, v, src as PartitionId, to);
            if choice.is_none_or(|(best, _, _)| score > best) {
                choice = Some((score, v, to));
            }
        }
        let Some((_, v, to)) = choice else {
            break;
        };
        apply(&mut plan, &mut current, &mut loads, v, to);
    }

    let dead_empty = (0..k).all(|p| live[p] || loads[p] == 0);
    let within_cap = (0..k).all(|p| !live[p] || loads[p] <= cap);
    plan.balance_restored = dead_empty && within_cap;
    plan.loads_after = loads;
    plan
}

/// The restreaming planner: compact the live partitions to `0..live`,
/// restream the graph over the compacted current assignment, then diff
/// the accepted outcome against `owner` into a move list — mandatory
/// evacuations (vertex order) first, then quality moves in descending
/// locality gain — truncated to the budget.
fn plan_rebalance_restream(
    g: &Graph,
    owner: &[PartitionId],
    live: &[bool],
    cfg: &MigrationConfig,
    algorithm: Algorithm,
    order: StreamOrder,
    rounds: usize,
) -> MigrationPlan {
    let k = live.len();
    let n = owner.len();
    let live_ids: Vec<PartitionId> =
        (0..k).filter(|&p| live[p]).map(|p| p as PartitionId).collect();
    if live_ids.is_empty() {
        return plan_rebalance_greedy(g, owner, live, cfg);
    }
    // Current assignment in the compacted live id space; vertices on
    // dead partitions become UNASSIGNED so the restream re-places them.
    let compact: Vec<PartitionId> = owner
        .iter()
        .map(|&p| live_ids.binary_search(&p).map(|i| i as PartitionId).unwrap_or(UNASSIGNED))
        .collect();
    let pcfg = PartitionerConfig::new(live_ids.len()).with_slack(cfg.balance_slack);
    let Some(outcome) = restream_rounds(g, algorithm, &pcfg, order, &compact, rounds) else {
        // Edge-stream algorithms cannot restream a vertex-owner map.
        return plan_rebalance_greedy(g, owner, live, cfg);
    };
    // Back to the original partition id space. A vertex can still be
    // UNASSIGNED here only when every restream round was rejected AND it
    // lived on a dead partition; spread those round-robin.
    let target: Vec<PartitionId> = outcome
        .owner
        .iter()
        .enumerate()
        .map(
            |(v, &p)| {
                if p == UNASSIGNED {
                    live_ids[v % live_ids.len()]
                } else {
                    live_ids[p as usize]
                }
            },
        )
        .collect();
    let mut mandatory: Vec<u32> = Vec::new();
    let mut quality: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let from = owner[v as usize];
        if (from as usize) >= k || !live[from as usize] {
            mandatory.push(v);
        } else if target[v as usize] != from {
            quality.push(v);
        }
    }
    quality.sort_by_key(|&v| {
        (std::cmp::Reverse(gain(g, owner, v, owner[v as usize], target[v as usize])), v)
    });

    let mut plan = MigrationPlan {
        moves: Vec::new(),
        data_moved: 0,
        balance_restored: false,
        loads_after: Vec::new(),
    };
    let mut current = owner.to_vec();
    let mut loads = vec![0u64; k];
    for &p in &current {
        if let Some(slot) = loads.get_mut(p as usize) {
            *slot += 1;
        }
    }
    for v in mandatory.into_iter().chain(quality) {
        if plan.moves.len() >= cfg.budget {
            break;
        }
        let from = current[v as usize];
        let to = target[v as usize];
        if from == to {
            continue;
        }
        plan.moves.push(VertexMove { vertex: v, from, to });
        plan.data_moved += 1 + g.degree(v) as u64;
        if let Some(slot) = loads.get_mut(from as usize) {
            *slot -= 1;
        }
        loads[to as usize] += 1;
        current[v as usize] = to;
    }
    // sgp-lint: allow(no-float-accounting): the balance cap is a config-derived threshold, not simulated-time accounting
    let cap = ((cfg.balance_slack * n as f64 / live_ids.len() as f64).ceil() as u64).max(1);
    let dead_empty = (0..k).all(|p| live[p] || loads[p] == 0);
    let within_cap = (0..k).all(|p| !live[p] || loads[p] <= cap);
    plan.balance_restored = dead_empty && within_cap;
    plan.loads_after = loads;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
    use sgp_graph::StreamOrder;

    fn setup() -> (Graph, Vec<PartitionId>) {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 240, edges: 1400, seed: 7 });
        let cfg = crate::PartitionerConfig::new(4);
        let p = crate::partition(&g, crate::Algorithm::Ldg, &cfg, StreamOrder::Natural);
        let owner = p.masters(&g);
        (g, owner)
    }

    #[test]
    fn scale_in_evacuates_the_dead_partition() {
        let (g, owner) = setup();
        let live = vec![true, true, true, false];
        let plan = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        assert!(plan.balance_restored);
        assert_eq!(plan.loads_after[3], 0);
        let after = plan.apply(&owner);
        assert!(after.iter().all(|&p| p < 3));
        assert!(plan.moves.iter().all(|m| m.from == 3));
    }

    #[test]
    fn scale_out_fills_the_new_partition_within_cap() {
        let (g, owner) = setup();
        let live = vec![true; 5];
        let cfg = MigrationConfig { balance_slack: 1.05, ..MigrationConfig::default() };
        let plan = plan_rebalance(&g, &owner, &live, &cfg);
        assert!(plan.balance_restored);
        let cap = (1.05f64 * 240.0 / 5.0).ceil() as u64;
        assert!(plan.loads_after.iter().all(|&l| l <= cap), "{:?}", plan.loads_after);
        assert!(plan.loads_after[4] > 0, "new partition received load");
    }

    #[test]
    fn budget_is_a_hard_ceiling() {
        let (g, owner) = setup();
        let live = vec![true, true, true, false];
        let cfg = MigrationConfig { budget: 5, ..MigrationConfig::default() };
        let plan = plan_rebalance(&g, &owner, &live, &cfg);
        assert_eq!(plan.moves.len(), 5);
        assert!(!plan.balance_restored, "60-ish strays cannot fit in 5 moves");
    }

    #[test]
    fn plans_are_deterministic() {
        let (g, owner) = setup();
        let live = vec![true, false, true, true];
        let a = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        let b = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn healthy_balanced_cluster_needs_no_moves() {
        let (g, owner) = setup();
        let live = vec![true; 4];
        let plan = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        assert!(plan.moves.is_empty());
        assert!(plan.balance_restored);
        assert_eq!(plan.data_moved, 0);
    }

    #[test]
    fn no_live_partitions_is_reported_not_panicked() {
        let (g, owner) = setup();
        let plan = plan_rebalance(&g, &owner, &[false; 4], &MigrationConfig::default());
        assert!(plan.moves.is_empty());
        assert!(!plan.balance_restored);
    }

    fn restream_cfg(budget: usize) -> MigrationConfig {
        MigrationConfig {
            budget,
            strategy: MigrationStrategy::Restream {
                algorithm: crate::Algorithm::Ldg,
                order: StreamOrder::Natural,
                rounds: 3,
            },
            ..MigrationConfig::default()
        }
    }

    #[test]
    fn restream_strategy_zero_budget_is_identity() {
        let (g, owner) = setup();
        let plan = plan_rebalance(&g, &owner, &[true; 4], &restream_cfg(0));
        assert!(plan.moves.is_empty());
        assert_eq!(plan.apply(&owner), owner);
        assert_eq!(plan.data_moved, 0);
    }

    #[test]
    fn restream_strategy_respects_budget_and_is_deterministic() {
        let (g, owner) = setup();
        let live = vec![true, true, true, false];
        let a = plan_rebalance(&g, &owner, &live, &restream_cfg(40));
        let b = plan_rebalance(&g, &owner, &live, &restream_cfg(40));
        assert_eq!(a, b);
        assert!(a.moves.len() <= 40);
        // Evacuations come first, in vertex order.
        let evac: Vec<u32> = a.moves.iter().take_while(|m| m.from == 3).map(|m| m.vertex).collect();
        assert!(evac.windows(2).all(|w| w[0] < w[1]));
        assert!(a.moves.iter().all(|m| m.to < 3));
    }

    #[test]
    fn restream_strategy_falls_back_to_greedy_for_edge_algorithms() {
        let (g, owner) = setup();
        let live = vec![true, true, true, false];
        let cfg = MigrationConfig {
            strategy: MigrationStrategy::Restream {
                algorithm: crate::Algorithm::Hdrf,
                order: StreamOrder::Natural,
                rounds: 2,
            },
            ..MigrationConfig::default()
        };
        let restream = plan_rebalance(&g, &owner, &live, &cfg);
        let greedy = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        assert_eq!(restream, greedy);
    }
}
