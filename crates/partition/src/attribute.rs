//! Attribute-balanced streaming partitioning (the paper's Appendix A).
//!
//! "Re-streaming versions of LDG and FENNEL can generate a balanced
//! partitioning on any vertex attribute `a(u)` by substituting `|P_i|`
//! with `x_i = Σ_{u∈P_i} a(u)` in Equation (4) and (5)."
//!
//! This module implements exactly that substitution, turning LDG and
//! FENNEL into *workload-aware streaming* partitioners: feed the access
//! counts recorded by `sgp_db`'s `AccessRecorder` as the attribute and
//! the stream pass balances *load* instead of cardinality — the
//! streaming counterpart of the paper's offline weighted-METIS
//! experiment (Fig. 8), and one of the §7 future-work directions
//! ("algorithms that consider … impacts of workload execution skew").

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::edge_cut::{VertexStreamPartitioner, VertexStreamState};
use sgp_graph::stream::VertexRecord;

/// LDG with the partition-size term replaced by an arbitrary vertex
/// attribute (Eq. 4 with `x_i = Σ a(u)`).
#[derive(Debug, Clone)]
pub struct AttributeLdg {
    k: usize,
    attribute: Vec<u64>,
    capacity: f64,
    loads: Vec<u64>,
    assigned: Vec<PartitionId>,
}

impl AttributeLdg {
    /// Creates the partitioner; `attribute[v]` is the weight balanced
    /// across partitions (e.g. `1 + access_count(v)`).
    ///
    /// # Panics
    /// Panics if any attribute is zero (zero-weight vertices would make
    /// the balance term blind to them; use 1 as the floor).
    pub fn new(cfg: &PartitionerConfig, attribute: Vec<u64>) -> Self {
        assert!(!attribute.is_empty(), "attribute vector must cover the graph");
        assert!(attribute.iter().all(|&a| a > 0), "attributes must be positive");
        let total: u64 = attribute.iter().sum();
        let capacity = (cfg.balance_slack * total as f64 / cfg.k as f64).max(1.0);
        let n = attribute.len();
        AttributeLdg {
            k: cfg.k,
            attribute,
            capacity,
            loads: vec![0; cfg.k],
            assigned: vec![PartitionId::MAX; n],
        }
    }

    /// Current per-partition attribute loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

impl VertexStreamPartitioner for AttributeLdg {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        let hist = state.neighbor_histogram(&rec.neighbors, self.k);
        let w = self.attribute[rec.vertex as usize];
        let mut best: Option<(f64, u64, usize)> = None;
        for (i, &h) in hist.iter().enumerate() {
            let load = self.loads[i];
            if (load + w) as f64 > self.capacity {
                continue;
            }
            let score = (h as f64 + 1.0) * (1.0 - load as f64 / self.capacity);
            let candidate = (score, load, i);
            best = Some(match best {
                None => candidate,
                Some(b) if score > b.0 + 1e-12 || ((score - b.0).abs() <= 1e-12 && load < b.1) => {
                    candidate
                }
                Some(b) => b,
            });
        }
        let target = best.map(|(_, _, i)| i).unwrap_or_else(|| {
            // Heavy vertex that fits nowhere within slack: least loaded.
            // sgp-lint: allow(no-panic-in-lib): 0..self.k is non-empty because PartitionerConfig::new asserts k >= 1
            (0..self.k).min_by_key(|&i| self.loads[i]).expect("k >= 1")
        });
        // Re-streaming support: undo the previous pass's placement.
        let old = self.assigned[rec.vertex as usize];
        if old != PartitionId::MAX {
            self.loads[old as usize] -= w;
        }
        self.assigned[rec.vertex as usize] = target as PartitionId;
        self.loads[target] += w;
        target as PartitionId
    }

    fn name(&self) -> &'static str {
        "aLDG"
    }

    fn passes(&self) -> usize {
        // Appendix A frames attribute balancing as a re-streaming
        // technique: a second pass lets early placements adapt to heavy
        // vertices discovered late in the first pass.
        2
    }
}

/// FENNEL with the additive load term computed over an arbitrary vertex
/// attribute (Eq. 5 with `x_i = Σ a(u)`, load measured as a fraction of
/// the per-partition share so α keeps its original scale).
#[derive(Debug, Clone)]
pub struct AttributeFennel {
    k: usize,
    attribute: Vec<u64>,
    assigned: Vec<PartitionId>,
    alpha: f64,
    gamma: f64,
    /// Average attribute mass per vertex — converts attribute loads back
    /// into "equivalent vertices" so α's calibration survives.
    per_vertex_unit: f64,
    capacity: f64,
    loads: Vec<u64>,
}

impl AttributeFennel {
    /// Creates the partitioner for a graph with `m` edges.
    ///
    /// # Panics
    /// Panics if the attribute vector is empty or contains zeros.
    pub fn new(cfg: &PartitionerConfig, attribute: Vec<u64>, m: usize) -> Self {
        assert!(!attribute.is_empty(), "attribute vector must cover the graph");
        assert!(attribute.iter().all(|&a| a > 0), "attributes must be positive");
        let n = attribute.len();
        let total: u64 = attribute.iter().sum();
        AttributeFennel {
            k: cfg.k,
            alpha: cfg.resolved_fennel_alpha(n, m),
            gamma: cfg.fennel_gamma,
            per_vertex_unit: total as f64 / n as f64,
            capacity: (cfg.balance_slack * total as f64 / cfg.k as f64).max(1.0),
            assigned: vec![PartitionId::MAX; attribute.len()],
            attribute,
            loads: vec![0; cfg.k],
        }
    }
}

impl VertexStreamPartitioner for AttributeFennel {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        let hist = state.neighbor_histogram(&rec.neighbors, self.k);
        let w = self.attribute[rec.vertex as usize];
        let mut best: Option<(f64, u64, usize)> = None;
        for (i, &h) in hist.iter().enumerate() {
            let load = self.loads[i];
            if (load + w) as f64 > self.capacity {
                continue;
            }
            let equivalent_vertices = load as f64 / self.per_vertex_unit;
            let penalty = self.alpha * self.gamma * equivalent_vertices.powf(self.gamma - 1.0);
            let score = h as f64 - penalty;
            let candidate = (score, load, i);
            best = Some(match best {
                None => candidate,
                Some(b) if score > b.0 + 1e-12 || ((score - b.0).abs() <= 1e-12 && load < b.1) => {
                    candidate
                }
                Some(b) => b,
            });
        }
        let target = best.map(|(_, _, i)| i).unwrap_or_else(|| {
            // sgp-lint: allow(no-panic-in-lib): 0..self.k is non-empty because PartitionerConfig::new asserts k >= 1
            (0..self.k).min_by_key(|&i| self.loads[i]).expect("k >= 1")
        });
        let old = self.assigned[rec.vertex as usize];
        if old != PartitionId::MAX {
            self.loads[old as usize] -= w;
        }
        self.assigned[rec.vertex as usize] = target as PartitionId;
        self.loads[target] += w;
        target as PartitionId
    }

    fn name(&self) -> &'static str {
        "aFNL"
    }

    fn passes(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::{run_vertex_stream, Ldg};
    use crate::metrics;
    use rand::Rng;
    use sgp_graph::generators::{snb_social, SnbConfig};
    use sgp_graph::sampling::{seeded_rng, Zipf};
    use sgp_graph::{Graph, StreamOrder};

    fn graph() -> Graph {
        snb_social(SnbConfig {
            persons: 2000,
            communities: 25,
            avg_friends: 10.0,
            ..SnbConfig::default()
        })
    }

    /// Zipf-skewed access weights over a random permutation.
    fn skewed_weights(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        let zipf = Zipf::new(n, 0.9);
        let mut w = vec![1u64; n];
        for _ in 0..5 * n {
            w[zipf.sample(&mut rng)] += 1;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        perm.into_iter().map(|i| w[i]).collect()
    }

    fn attribute_loads(owner: &[u32], weights: &[u64], k: usize) -> Vec<u64> {
        let mut loads = vec![0u64; k];
        for (v, &p) in owner.iter().enumerate() {
            loads[p as usize] += weights[v];
        }
        loads
    }

    #[test]
    fn attribute_ldg_balances_weights_plain_ldg_does_not() {
        let g = graph();
        let k = 8;
        let cfg = PartitionerConfig::new(k);
        let weights = skewed_weights(g.num_vertices(), 3);
        let order = StreamOrder::Random { seed: 9 };

        let plain = run_vertex_stream(&g, &mut Ldg::new(&cfg, g.num_vertices()), k, order);
        let aware = run_vertex_stream(&g, &mut AttributeLdg::new(&cfg, weights.clone()), k, order);

        let imb = |p: &crate::Partitioning| {
            let loads = attribute_loads(p.vertex_owner.as_ref().unwrap(), &weights, k);
            let avg = loads.iter().sum::<u64>() as f64 / k as f64;
            *loads.iter().max().unwrap() as f64 / avg
        };
        let (plain_imb, aware_imb) = (imb(&plain), imb(&aware));
        assert!(
            aware_imb < plain_imb,
            "attribute LDG weight imbalance {aware_imb:.2} must beat plain LDG {plain_imb:.2}"
        );
        assert!(aware_imb < 1.25, "attribute LDG must stay near the slack: {aware_imb:.2}");
    }

    #[test]
    fn attribute_fennel_balances_weights() {
        let g = graph();
        let k = 8;
        let cfg = PartitionerConfig::new(k);
        let weights = skewed_weights(g.num_vertices(), 5);
        let p = run_vertex_stream(
            &g,
            &mut AttributeFennel::new(&cfg, weights.clone(), g.num_edges()),
            k,
            StreamOrder::Random { seed: 2 },
        );
        let loads = attribute_loads(p.vertex_owner.as_ref().unwrap(), &weights, k);
        let avg = loads.iter().sum::<u64>() as f64 / k as f64;
        let imb = *loads.iter().max().unwrap() as f64 / avg;
        assert!(imb < 1.3, "attribute FENNEL weight imbalance {imb:.2}");
    }

    #[test]
    fn unit_attribute_degenerates_to_cardinality_balance() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let p = run_vertex_stream(
            &g,
            &mut AttributeLdg::new(&cfg, vec![1; g.num_vertices()]),
            4,
            StreamOrder::Random { seed: 7 },
        );
        let counts = p.vertices_per_partition().unwrap();
        assert!(metrics::load_imbalance(&counts) < 1.1);
    }

    #[test]
    fn attribute_ldg_still_exploits_structure() {
        // With unit weights, the attribute variant should cut far fewer
        // edges than hash (it is still LDG at heart).
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let aware = run_vertex_stream(
            &g,
            &mut AttributeLdg::new(&cfg, vec![1; g.num_vertices()]),
            4,
            StreamOrder::Random { seed: 1 },
        );
        let hash = run_vertex_stream(
            &g,
            &mut crate::edge_cut::HashVertex::new(&cfg),
            4,
            StreamOrder::Random { seed: 1 },
        );
        let (ea, eh) = (
            metrics::edge_cut_ratio(&g, &aware).unwrap(),
            metrics::edge_cut_ratio(&g, &hash).unwrap(),
        );
        assert!(ea < 0.9 * eh, "attribute LDG ECR {ea:.3} should beat hash {eh:.3}");
    }

    #[test]
    #[should_panic(expected = "attributes must be positive")]
    fn zero_attributes_rejected() {
        let cfg = PartitionerConfig::new(2);
        AttributeLdg::new(&cfg, vec![1, 0, 1]);
    }

    #[test]
    fn heavy_single_vertex_is_still_placed() {
        // One vertex heavier than a whole partition share must not panic
        // and must land somewhere.
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let mut w = vec![1u64; g.num_vertices()];
        w[0] = 10 * g.num_vertices() as u64;
        let p = run_vertex_stream(&g, &mut AttributeLdg::new(&cfg, w), 4, StreamOrder::Natural);
        assert!(p.vertex_owner.unwrap().iter().all(|&x| x < 4));
    }
}
