//! Edge-cut SGP on **edge streams** (§4.1.2 of the paper).
//!
//! "Edge streams do not necessarily have locality and algorithms in this
//! class cannot maintain complete adjacency information N(u) until all
//! incident edges of vertex u arrive. Therefore, they produce
//! partitionings of lower quality than their vertex stream counterparts
//! and need to revisit their initial assignments (e.g., Condensed
//! Spanning Tree (CST) and IOGP). Therefore, they are not generally
//! deployed in real systems."
//!
//! The paper excludes this class from its evaluation; we implement an
//! IOGP-style representative anyway so the claim is *testable*: the
//! crate's tests show it beats hash but loses to the vertex-stream LDG
//! on the same graph — exactly the quality gap §4.1.2 asserts.

use crate::assignment::{PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use sgp_graph::{Edge, EdgeStream, Graph, StreamOrder};

/// IOGP-style incremental edge-cut partitioner over an edge stream.
///
/// Placement rules on edge `(u, v)`:
/// 1. both unassigned → both to the least-loaded partition;
/// 2. one assigned → the other joins it if within capacity, else goes to
///    the least-loaded partition;
/// 3. both assigned → nothing to do (the edge follows `owner[src]`).
///
/// Every `reassess_interval` processed edges, vertices whose observed
/// degree crossed a threshold are *revisited* (IOGP's "vertex
/// reassignment"): a vertex moves to the partition holding the plurality
/// of its observed neighbours when that improves locality within the
/// balance constraint.
#[derive(Debug, Clone)]
pub struct IogpStyle {
    k: usize,
    capacity: f64,
    reassess_interval: usize,
}

impl IogpStyle {
    /// Creates the partitioner for a graph with `n` vertices.
    pub fn new(cfg: &PartitionerConfig, n: usize) -> Self {
        IogpStyle {
            k: cfg.k,
            capacity: cfg.vertex_capacity(n).max(1.0),
            reassess_interval: (n / 4).max(64),
        }
    }

    /// Runs the partitioner over `g`'s edge stream and returns the
    /// resulting edge-cut [`Partitioning`].
    pub fn run(&self, g: &Graph, order: StreamOrder) -> Partitioning {
        let n = g.num_vertices();
        const UNASSIGNED: PartitionId = PartitionId::MAX;
        let mut owner = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; self.k];
        // Observed (partial) adjacency, capped per vertex to bound memory
        // like real edge-stream partitioners do.
        const NEIGHBOR_CAP: usize = 32;
        let mut observed: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut dirty: Vec<u32> = Vec::new();

        let least_loaded = |sizes: &[usize]| -> usize {
            // sgp-lint: allow(no-panic-in-lib): sizes has length self.k and PartitionerConfig::new asserts k >= 1
            (0..sizes.len()).min_by_key(|&i| sizes[i]).expect("k >= 1")
        };

        let mut processed = 0usize;
        for Edge { src, dst } in EdgeStream::new(g, order) {
            for (a, b) in [(src, dst), (dst, src)] {
                let list = &mut observed[a as usize];
                if list.len() < NEIGHBOR_CAP {
                    list.push(b);
                }
            }
            match (owner[src as usize], owner[dst as usize]) {
                (UNASSIGNED, UNASSIGNED) => {
                    let p = least_loaded(&sizes);
                    owner[src as usize] = p as PartitionId;
                    owner[dst as usize] = p as PartitionId;
                    sizes[p] += 2;
                }
                (p, UNASSIGNED) => {
                    let target = if (sizes[p as usize] as f64) < self.capacity {
                        p as usize
                    } else {
                        least_loaded(&sizes)
                    };
                    owner[dst as usize] = target as PartitionId;
                    sizes[target] += 1;
                }
                (UNASSIGNED, p) => {
                    let target = if (sizes[p as usize] as f64) < self.capacity {
                        p as usize
                    } else {
                        least_loaded(&sizes)
                    };
                    owner[src as usize] = target as PartitionId;
                    sizes[target] += 1;
                }
                (_, _) => {}
            }
            dirty.push(src);
            processed += 1;
            if processed.is_multiple_of(self.reassess_interval) {
                self.reassess(&mut owner, &mut sizes, &observed, &mut dirty);
            }
        }
        // Park any isolated stragglers.
        for slot in owner.iter_mut() {
            if *slot == UNASSIGNED {
                let p = least_loaded(&sizes);
                *slot = p as PartitionId;
                sizes[p] += 1;
            }
        }
        Partitioning::from_vertex_owners(g, self.k, owner)
    }

    /// Moves each candidate vertex to its observed-plurality partition
    /// when that improves locality and keeps balance.
    fn reassess(
        &self,
        owner: &mut [PartitionId],
        sizes: &mut [usize],
        observed: &[Vec<u32>],
        candidates: &mut Vec<u32>,
    ) {
        // IOGP reassesses a vertex only once its observed degree crosses
        // a threshold — low-degree vertices keep their initial placement.
        const REASSESS_DEGREE: usize = 8;
        for &v in candidates.iter() {
            let cur = owner[v as usize];
            if cur == PartitionId::MAX || observed[v as usize].len() < REASSESS_DEGREE {
                continue;
            }
            let mut conn = vec![0usize; self.k];
            for &w in &observed[v as usize] {
                let p = owner[w as usize];
                if p != PartitionId::MAX {
                    conn[p as usize] += 1;
                }
            }
            let best = (0..self.k)
                .max_by_key(|&i| (conn[i], usize::MAX - sizes[i]))
                // sgp-lint: allow(no-panic-in-lib): 0..self.k is non-empty because PartitionerConfig::new asserts k >= 1
                .expect("k >= 1");
            if best != cur as usize
                && conn[best] > conn[cur as usize]
                && (sizes[best] as f64) < self.capacity
            {
                sizes[cur as usize] -= 1;
                sizes[best] += 1;
                owner[v as usize] = best as PartitionId;
            }
        }
        candidates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::{run_vertex_stream, HashVertex, Ldg};
    use crate::metrics;
    use sgp_graph::generators::{snb_social, SnbConfig};

    fn graph() -> Graph {
        snb_social(SnbConfig {
            persons: 2000,
            communities: 25,
            avg_friends: 10.0,
            ..SnbConfig::default()
        })
    }

    #[test]
    fn iogp_assigns_every_vertex_in_range() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let p = IogpStyle::new(&cfg, g.num_vertices()).run(&g, StreamOrder::Random { seed: 1 });
        let owner = p.vertex_owner.as_ref().unwrap();
        assert_eq!(owner.len(), g.num_vertices());
        assert!(owner.iter().all(|&x| x < 8));
    }

    /// The §4.1.2 claim, as code: edge-cut on edge streams beats hash but
    /// loses to its vertex-stream counterpart (LDG) on the same input.
    #[test]
    fn iogp_quality_sits_between_hash_and_ldg() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let order = StreamOrder::Random { seed: 4 };
        let iogp = IogpStyle::new(&cfg, g.num_vertices()).run(&g, order);
        let hash = run_vertex_stream(&g, &mut HashVertex::new(&cfg), 8, order);
        let ldg = run_vertex_stream(&g, &mut Ldg::new(&cfg, g.num_vertices()), 8, order);
        let ecr = |p: &Partitioning| metrics::edge_cut_ratio(&g, p).unwrap();
        let (ei, eh, el) = (ecr(&iogp), ecr(&hash), ecr(&ldg));
        assert!(ei < eh, "IOGP-style {ei:.3} must beat hash {eh:.3}");
        assert!(
            el < ei,
            "vertex-stream LDG {el:.3} must beat edge-stream IOGP-style {ei:.3} (§4.1.2)"
        );
    }

    #[test]
    fn iogp_respects_balance_roughly() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let p = IogpStyle::new(&cfg, g.num_vertices()).run(&g, StreamOrder::Random { seed: 2 });
        let counts = p.vertices_per_partition().unwrap();
        let imb = metrics::load_imbalance(&counts);
        assert!(imb < 1.3, "vertex imbalance {imb:.2}");
    }

    #[test]
    fn iogp_deterministic() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let a = IogpStyle::new(&cfg, g.num_vertices()).run(&g, StreamOrder::Bfs);
        let b = IogpStyle::new(&cfg, g.num_vertices()).run(&g, StreamOrder::Bfs);
        assert_eq!(a.vertex_owner, b.vertex_owner);
    }

    #[test]
    fn iogp_handles_isolated_vertices() {
        let g = sgp_graph::GraphBuilder::new().add_edge(0, 1).ensure_vertices(10).build();
        let cfg = PartitionerConfig::new(3);
        let p = IogpStyle::new(&cfg, 10).run(&g, StreamOrder::Natural);
        assert!(p.vertex_owner.unwrap().iter().all(|&x| x < 3));
    }
}
