//! Parallel execution of independent partitioning jobs.
//!
//! The paper's Table 1 "Parallelization" column is about parallelizing a
//! *single* stream across loaders; this module is the complementary,
//! embarrassingly-parallel case the experiment harness needs: running
//! many independent `(algorithm, k)` jobs over the same immutable graph
//! on all cores. Work is distributed over [`crate::exec::scoped_workers`]
//! (the workspace's single thread-creation point) with a shared atomic
//! cursor (simple work stealing), and results come back in job order —
//! bit-identical to a sequential run, since every algorithm in the
//! workspace is deterministic.

use crate::assignment::Partitioning;
use crate::config::PartitionerConfig;
use crate::registry::Algorithm;
use crate::streaming::{partition_chunked, DEFAULT_CHUNK};
use sgp_graph::{Graph, StreamOrder};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One partitioning job.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Shared configuration (contains `k`).
    pub config: PartitionerConfig,
    /// Stream order.
    pub order: StreamOrder,
}

fn run_job(g: &Graph, job: &Job) -> Partitioning {
    partition_chunked(g, job.algorithm, &job.config, job.order, DEFAULT_CHUNK)
}

/// Runs all jobs over `g` in parallel, returning one [`Partitioning`]
/// per job, in job order. Every slot is guaranteed filled: the worker
/// loop claims every index through the shared cursor, so the result is
/// a plain `Vec<Partitioning>` rather than options.
///
/// `threads = 0` (or 1) degenerates to sequential execution; both paths
/// route through the incremental streaming core, so parallel results
/// are bit-identical to sequential ones.
pub fn partition_batch(g: &Graph, jobs: &[Job], threads: usize) -> Vec<Partitioning> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = threads
        .max(1)
        .min(jobs.len())
        .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    if workers <= 1 {
        return jobs.iter().map(|job| run_job(g, job)).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Hand each worker a disjoint set of jobs through the shared cursor:
    // collect (index, result) pairs per worker, then restore job order.
    let collected: Vec<Vec<(usize, Partitioning)>> =
        crate::exec::scoped_workers(workers, |_worker| {
            let mut mine = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                mine.push((i, run_job(g, &jobs[i])));
            }
            mine
        });
    let mut indexed: Vec<(usize, Partitioning)> = collected.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert!(indexed.iter().enumerate().all(|(pos, &(i, _))| pos == i));
    indexed.into_iter().map(|(_, p)| p).collect()
}

/// Convenience: run every algorithm of a suite at one `k`, in parallel.
pub fn partition_suite(
    g: &Graph,
    algorithms: &[Algorithm],
    config: &PartitionerConfig,
    order: StreamOrder,
) -> Vec<(Algorithm, Partitioning)> {
    let jobs: Vec<Job> =
        algorithms.iter().map(|&algorithm| Job { algorithm, config: *config, order }).collect();
    let results = partition_batch(g, &jobs, algorithms.len());
    algorithms.iter().copied().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 500, edges: 3000, seed: 17 })
    }

    fn jobs() -> Vec<Job> {
        let order = StreamOrder::Random { seed: 5 };
        Algorithm::all()
            .iter()
            .map(|&algorithm| Job { algorithm, config: PartitionerConfig::new(4), order })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph();
        let jobs = jobs();
        let seq = partition_batch(&g, &jobs, 1);
        let par = partition_batch(&g, &jobs, 8);
        assert_eq!(seq.len(), jobs.len());
        assert_eq!(par.len(), jobs.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(s.edge_parts, p.edge_parts, "job {i} ({})", jobs[i].algorithm);
            assert_eq!(s.vertex_owner, p.vertex_owner, "job {i}");
        }
    }

    #[test]
    fn batch_matches_registry_one_shot() {
        // Routing through the incremental core must not change results
        // relative to the registry's sequential entry point.
        let g = graph();
        let jobs = jobs();
        let batch = partition_batch(&g, &jobs, 4);
        for (job, p) in jobs.iter().zip(&batch) {
            let direct = crate::registry::partition(&g, job.algorithm, &job.config, job.order);
            assert_eq!(direct.edge_parts, p.edge_parts, "{}", job.algorithm);
            assert_eq!(direct.vertex_owner, p.vertex_owner, "{}", job.algorithm);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = graph();
        assert!(partition_batch(&g, &[], 4).is_empty());
    }

    #[test]
    fn suite_returns_in_algorithm_order() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let suite = partition_suite(&g, Algorithm::online_suite(), &cfg, StreamOrder::Natural);
        let names: Vec<_> = suite.iter().map(|(a, _)| a.short_name()).collect();
        assert_eq!(names, vec!["ECR", "LDG", "FNL", "MTS"]);
        assert!(suite.iter().all(|(_, p)| p.edge_parts.len() == g.num_edges()));
    }
}
