//! The incremental streaming-partitioner core.
//!
//! The paper defines every streaming algorithm over a one-pass stream
//! (Stanton's model): the partitioner holds mutable state, consumes
//! stream elements one at a time, and emits a placement per element.
//! This module makes that lifecycle explicit as a state machine —
//! `init(k, config) → ingest(chunk) → seal() → Partitioning` — instead
//! of the whole-graph batch functions the reproduction started with:
//!
//! * [`VertexIngest`] / [`EdgeIngest`]: the per-family machines. They
//!   own the shared streaming state ([`VertexStreamState`] /
//!   [`EdgeStreamState`]), accept bounded chunks from the chunked
//!   sources in `sgp_graph::stream`, and seal into a [`Partitioning`].
//!   Ingestion is O(chunk); nothing about the whole stream is assumed.
//! * [`run_vertex_chunked`] / [`run_edge_chunked`]: traced drivers that
//!   pump a source through a machine. The legacy entry points
//!   (`run_vertex_stream_traced`, `run_edge_stream_traced`) are thin
//!   adapters over these, and the trace span/sequence emission is
//!   byte-identical to the pre-refactor drivers: chunking only batches
//!   the *delivery* of elements, never reorders them, and spans are
//!   stamped with logical element counts that don't observe chunk
//!   boundaries.
//! * [`StreamingPartitioner`]: an algorithm-agnostic facade over the
//!   registry — callers that stream their own chunks (e.g. the
//!   multi-loader layer, external ingestion pipelines) get one uniform
//!   lifecycle for all Table 2 algorithms, with METIS staying offline
//!   behind the same interface.
//!
//! Determinism contract: for every algorithm, any chunk size (including
//! 1 and whole-stream) yields a byte-identical [`Partitioning`] to the
//! one-shot run, because placement decisions depend only on the element
//! sequence and the state folded over it.

use crate::assignment::{CutModel, PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::decisions::DecisionStats;
use crate::edge_cut::{
    Fennel, HashVertex, Ldg, Restream, VertexStreamPartitioner, VertexStreamState, UNASSIGNED,
};
use crate::hybrid::{high_degree_threshold, place_hybrid_edges, GingerVertex};
use crate::metis::MultilevelPartitioner;
use crate::registry::Algorithm;
use crate::vertex_cut::{
    Dbh, EdgeStreamPartitioner, EdgeStreamState, GridConstrained, HashEdge, Hdrf, PowerGraphGreedy,
};
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Edge, EdgeStreamSource, Graph, StreamOrder, VertexId, VertexStreamSource};
use sgp_trace::{keys, NullSink, TraceSink};

/// Default ingestion chunk size used by the legacy one-shot entry
/// points. Large enough to amortize per-chunk overhead, small enough to
/// keep the resident buffer trivial next to the graph itself.
pub const DEFAULT_CHUNK: usize = 1024;

// Forwarding impls so machines can hold partitioners by `&mut` or boxed
// trait object interchangeably with owned values.
impl<P: VertexStreamPartitioner + ?Sized> VertexStreamPartitioner for &mut P {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        (**self).place(rec, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn passes(&self) -> usize {
        (**self).passes()
    }
    fn decision_stats(&self) -> DecisionStats {
        (**self).decision_stats()
    }
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        (**self).snapshot_records()
    }
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        (**self).restore_record(key, value)
    }
}

impl<P: VertexStreamPartitioner + ?Sized> VertexStreamPartitioner for Box<P> {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        (**self).place(rec, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn passes(&self) -> usize {
        (**self).passes()
    }
    fn decision_stats(&self) -> DecisionStats {
        (**self).decision_stats()
    }
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        (**self).snapshot_records()
    }
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        (**self).restore_record(key, value)
    }
}

impl<P: EdgeStreamPartitioner + ?Sized> EdgeStreamPartitioner for &mut P {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        (**self).place(e, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn passes(&self) -> usize {
        (**self).passes()
    }
    fn observing(&self) -> bool {
        (**self).observing()
    }
    fn observe(&mut self, e: Edge) {
        (**self).observe(e)
    }
    fn decision_stats(&self) -> DecisionStats {
        (**self).decision_stats()
    }
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        (**self).snapshot_records()
    }
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        (**self).restore_record(key, value)
    }
}

impl<P: EdgeStreamPartitioner + ?Sized> EdgeStreamPartitioner for Box<P> {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        (**self).place(e, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn passes(&self) -> usize {
        (**self).passes()
    }
    fn observing(&self) -> bool {
        (**self).observing()
    }
    fn observe(&mut self, e: Edge) {
        (**self).observe(e)
    }
    fn decision_stats(&self) -> DecisionStats {
        (**self).decision_stats()
    }
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        (**self).snapshot_records()
    }
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        (**self).restore_record(key, value)
    }
}

/// Incremental state machine for vertex-stream (edge-cut) partitioners.
///
/// Owns the shared assignment/size state and a logical sequence counter
/// (elements placed so far — the trace stamp domain). Feed it chunks in
/// stream order via [`ingest`](VertexIngest::ingest); [`seal`](VertexIngest::seal)
/// closes the lifecycle.
#[derive(Debug, Clone)]
pub struct VertexIngest<P> {
    partitioner: P,
    state: VertexStreamState,
    k: usize,
    seq: u64,
}

impl<P: VertexStreamPartitioner> VertexIngest<P> {
    /// Initializes the machine for `n` vertices and `k` partitions.
    pub fn init(partitioner: P, n: usize, k: usize) -> Self {
        VertexIngest { partitioner, state: VertexStreamState::new(n, k), k, seq: 0 }
    }

    /// Stream passes the wrapped partitioner wants (≥ 2 for restreaming).
    pub fn passes(&self) -> usize {
        self.partitioner.passes()
    }

    /// Elements placed so far (the logical trace stamp).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Read access to the shared streaming state.
    pub fn state(&self) -> &VertexStreamState {
        &self.state
    }

    /// Ingests one bounded chunk of stream elements, placing each
    /// against the state folded over all previous elements.
    pub fn ingest(&mut self, chunk: &[VertexRecord]) {
        for rec in chunk {
            let p = self.partitioner.place(rec, &self.state);
            debug_assert!((p as usize) < self.k, "partitioner returned out-of-range id");
            self.state.assign(rec.vertex, p);
            self.seq += 1;
        }
    }

    /// Seals into an edge-cut [`Partitioning`] (out-edges grouped with
    /// their source, per Appendix B). Vertices never ingested are placed
    /// on partition 0 deterministically.
    pub fn seal(self, g: &Graph) -> Partitioning {
        self.seal_traced(g, &mut NullSink)
    }

    /// [`seal`](VertexIngest::seal) that also flushes the end-of-stream
    /// counters (placements, decision stats, per-partition loads) into
    /// `sink` — exactly the counter block the legacy traced driver
    /// emitted after its stream span.
    pub fn seal_traced<S: TraceSink>(self, g: &Graph, sink: &mut S) -> Partitioning {
        if sink.enabled() {
            sink.counter_add(keys::PARTITION_VERTICES_PLACED, 0, self.seq);
            self.partitioner.decision_stats().flush_into(sink);
            for (i, &size) in self.state.sizes.iter().enumerate() {
                sink.counter_add(keys::PARTITION_LOAD, i as u64, size as u64);
            }
        }
        Partitioning::from_vertex_owners(g, self.k, owner_from_assignment(self.state.assignment))
    }

    /// Tears the machine down into its final vertex-owner map (used by
    /// the hybrid seal, which routes edges itself).
    pub(crate) fn into_owner(self) -> Vec<PartitionId> {
        owner_from_assignment(self.state.assignment)
    }

    /// Snapshot support: the wrapped partitioner.
    pub(crate) fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Snapshot support: mutable access to the wrapped partitioner.
    pub(crate) fn partitioner_mut(&mut self) -> &mut P {
        &mut self.partitioner
    }

    /// Snapshot support: mutable access to the shared state.
    pub(crate) fn state_mut(&mut self) -> &mut VertexStreamState {
        &mut self.state
    }

    /// Snapshot support: overwrites the logical sequence counter.
    pub(crate) fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }
}

/// Maps the ingestion sentinel to a concrete partition: a vertex the
/// stream never delivered lands on partition 0 (deterministic, and
/// impossible when a full stream was ingested).
pub(crate) fn owner_from_assignment(assignment: Vec<PartitionId>) -> Vec<PartitionId> {
    assignment.into_iter().map(|p| if p == UNASSIGNED { 0 } else { p }).collect()
}

/// Incremental state machine for edge-stream (vertex-cut) partitioners.
///
/// Holds the replica-table state plus the edge-placement vector; unlike
/// the vertex machine it needs the graph up front to map stream edges to
/// CSR slots. Edges never ingested stay on partition 0 (the same
/// initialization the batch driver used).
#[derive(Debug, Clone)]
pub struct EdgeIngest<'g, P> {
    g: &'g Graph,
    partitioner: P,
    state: EdgeStreamState,
    edge_parts: Vec<PartitionId>,
    k: usize,
    seq: u64,
}

impl<'g, P: EdgeStreamPartitioner> EdgeIngest<'g, P> {
    /// Initializes the machine over `g` with `k` partitions.
    pub fn init(g: &'g Graph, partitioner: P, k: usize) -> Self {
        EdgeIngest {
            g,
            partitioner,
            state: EdgeStreamState::new(g.num_vertices(), k),
            edge_parts: vec![0 as PartitionId; g.num_edges()],
            k,
            seq: 0,
        }
    }

    /// Stream passes the wrapped partitioner wants (2 for 2PS).
    pub fn passes(&self) -> usize {
        self.partitioner.passes()
    }

    /// Elements placed so far (the logical trace stamp).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Read access to the shared streaming state.
    pub fn state(&self) -> &EdgeStreamState {
        &self.state
    }

    /// Ingests one bounded chunk of stream edges. While the wrapped
    /// partitioner reports an observation pass
    /// ([`EdgeStreamPartitioner::observing`]), edges are routed to
    /// [`EdgeStreamPartitioner::observe`] and neither the shared state,
    /// the placement vector, nor the sequence counter changes — the
    /// snapshot invariant `sum(loads) == seq` holds across passes.
    pub fn ingest(&mut self, chunk: &[Edge]) {
        for &e in chunk {
            if self.partitioner.observing() {
                self.partitioner.observe(e);
                continue;
            }
            let p = self.partitioner.place(e, &self.state);
            debug_assert!((p as usize) < self.k, "partitioner returned out-of-range id");
            self.state.record(e, p);
            // sgp-lint: allow(no-panic-in-lib): ingested edges come from a stream over self.g, so the CSR lookup cannot miss
            let idx = self.g.edge_index(e.src, e.dst).expect("stream edge exists in graph");
            self.edge_parts[idx] = p;
            self.seq += 1;
        }
    }

    /// Seals into a vertex-cut [`Partitioning`].
    pub fn seal(self) -> Partitioning {
        self.seal_traced(&mut NullSink)
    }

    /// [`seal`](EdgeIngest::seal) that also flushes the end-of-stream
    /// counters — placements, decision stats enriched with the replica
    /// and mirror counts the shared state accumulated, per-partition
    /// edge loads — exactly as the legacy traced driver did.
    pub fn seal_traced<S: TraceSink>(self, sink: &mut S) -> Partitioning {
        if sink.enabled() {
            sink.counter_add(keys::PARTITION_EDGES_PLACED, 0, self.seq);
            let mut stats = self.partitioner.decision_stats();
            stats.replicas_created = self.state.replicas_created;
            stats.mirror_creations = self.state.mirror_creations;
            stats.flush_into(sink);
            for (i, &count) in self.state.edge_counts.iter().enumerate() {
                sink.counter_add(keys::PARTITION_LOAD, i as u64, count as u64);
            }
        }
        Partitioning::from_edge_parts(self.g, self.k, self.edge_parts)
    }

    /// Snapshot support: the wrapped partitioner.
    pub(crate) fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Snapshot support: mutable access to the wrapped partitioner.
    pub(crate) fn partitioner_mut(&mut self) -> &mut P {
        &mut self.partitioner
    }

    /// Snapshot support: mutable access to the shared state.
    pub(crate) fn state_mut(&mut self) -> &mut EdgeStreamState {
        &mut self.state
    }

    /// Snapshot support: the per-edge placement vector (CSR slot order).
    pub(crate) fn edge_parts(&self) -> &[PartitionId] {
        &self.edge_parts
    }

    /// Snapshot support: mutable access to the placement vector.
    pub(crate) fn edge_parts_mut(&mut self) -> &mut [PartitionId] {
        &mut self.edge_parts
    }

    /// Snapshot support: overwrites the logical sequence counter.
    pub(crate) fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }
}

/// Drives a vertex-stream partitioner through the incremental core in
/// bounded chunks, emitting the same trace spans as the legacy driver:
/// one `partition.stream` span, one `partition.pass` span per pass,
/// stamps = logical element counts.
pub fn run_vertex_chunked<P: VertexStreamPartitioner, S: TraceSink>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
    chunk_size: usize,
    sink: &mut S,
) -> Partitioning {
    let mut core = VertexIngest::init(partitioner, g.num_vertices(), k);
    let mut source = VertexStreamSource::new(g, order);
    let mut chunk = Vec::new();
    sink.span_enter(keys::PARTITION_STREAM, 0, core.seq());
    for pass in 0..core.passes() {
        sink.span_enter(keys::PARTITION_PASS, pass as u64, core.seq());
        source.restart();
        while source.next_chunk(chunk_size, &mut chunk) > 0 {
            core.ingest(&chunk);
        }
        sink.span_exit(keys::PARTITION_PASS, pass as u64, core.seq());
    }
    sink.span_exit(keys::PARTITION_STREAM, 0, core.seq());
    core.seal_traced(g, sink)
}

/// Drives an edge-stream partitioner through the incremental core in
/// bounded chunks; trace emission matches the legacy edge driver for
/// one-pass algorithms (a single `partition.stream` span, no pass
/// spans). Multi-pass edge partitioners (2PS) additionally get one
/// `partition.pass` span per pass, mirroring the vertex driver.
pub fn run_edge_chunked<P: EdgeStreamPartitioner, S: TraceSink>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
    chunk_size: usize,
    sink: &mut S,
) -> Partitioning {
    let mut core = EdgeIngest::init(g, partitioner, k);
    let mut source = EdgeStreamSource::new(g, order);
    let mut chunk = Vec::new();
    let passes = core.passes().max(1);
    sink.span_enter(keys::PARTITION_STREAM, 0, core.seq());
    for pass in 0..passes {
        if passes > 1 {
            sink.span_enter(keys::PARTITION_PASS, pass as u64, core.seq());
        }
        source.restart();
        while source.next_chunk(chunk_size, &mut chunk) > 0 {
            core.ingest(&chunk);
        }
        if passes > 1 {
            sink.span_exit(keys::PARTITION_PASS, pass as u64, core.seq());
        }
    }
    sink.span_exit(keys::PARTITION_STREAM, 0, core.seq());
    core.seal_traced(sink)
}

/// Builds the boxed vertex-stream machine for `algorithm`, or `None`
/// when the algorithm does not consume a vertex stream. The hybrid
/// algorithms appear here because their first phase is a vertex stream
/// (hash placement for HCR, the Ginger greedy for HG); their edge
/// routing happens at seal time.
pub(crate) fn boxed_vertex_partitioner(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
) -> Option<Box<dyn VertexStreamPartitioner>> {
    let n = g.num_vertices();
    let m = g.num_edges();
    match algorithm {
        Algorithm::EcrHash => Some(Box::new(HashVertex::new(cfg))),
        Algorithm::Ldg => Some(Box::new(Ldg::new(cfg, n))),
        Algorithm::Fennel => Some(Box::new(Fennel::new(cfg, n, m))),
        Algorithm::RestreamLdg => Some(Box::new(Restream::new(Ldg::new(cfg, n), 5))),
        Algorithm::RestreamFennel => Some(Box::new(Restream::new(Fennel::new(cfg, n, m), 5))),
        Algorithm::HybridRandom => Some(Box::new(HashVertex::new(cfg))),
        Algorithm::Ginger => Some(Box::new(GingerVertex::new(cfg, g))),
        _ => None,
    }
}

/// Builds the boxed edge-stream machine for `algorithm`, or `None` when
/// the algorithm does not consume an edge stream.
pub(crate) fn boxed_edge_partitioner(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
) -> Option<Box<dyn EdgeStreamPartitioner>> {
    match algorithm {
        Algorithm::VcrHash => Some(Box::new(HashEdge::new(cfg))),
        Algorithm::Dbh => Some(Box::new(Dbh::with_exact_degrees(cfg, g))),
        Algorithm::Grid => Some(Box::new(GridConstrained::new(cfg))),
        Algorithm::PowerGraphGreedy => Some(Box::new(PowerGraphGreedy::new(cfg))),
        Algorithm::Hdrf => Some(Box::new(Hdrf::new(cfg, g.num_edges()))),
        Algorithm::TwoPhaseHdrf => {
            Some(Box::new(crate::two_phase::TwoPhase::new(cfg, g.num_edges())))
        }
        _ => None,
    }
}

/// Which stream a [`StreamingPartitioner`] consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamInput {
    /// Chunks of [`VertexRecord`]s (edge-cut and hybrid algorithms).
    Vertices,
    /// Chunks of [`Edge`]s (vertex-cut algorithms).
    Edges,
    /// No stream at all — the algorithm reads the whole graph at seal
    /// time (the offline METIS baseline).
    Offline,
}

/// Error returned when a chunk of the wrong stream kind is ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrongStreamKind {
    /// What the machine actually consumes.
    pub expected: StreamInput,
}

impl std::fmt::Display for WrongStreamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "this streaming partitioner consumes {:?} input", self.expected)
    }
}

impl std::error::Error for WrongStreamKind {}

/// How a vertex machine turns its owner map into edges at seal time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VertexSealMode {
    /// Appendix-B edge-cut grouping (out-edges follow their source).
    EdgeCut,
    /// PowerLyra hybrid routing: low-degree in-edges follow the target's
    /// owner, high-degree in-edges the source's.
    Hybrid { threshold: usize },
}

pub(crate) enum Machine<'g> {
    Vertex { core: VertexIngest<Box<dyn VertexStreamPartitioner>>, seal: VertexSealMode },
    Edge { core: EdgeIngest<'g, Box<dyn EdgeStreamPartitioner>> },
    Offline,
}

/// Algorithm-agnostic incremental lifecycle over the registry:
/// `init(k, config) → ingest(chunk) → seal() → Partitioning`.
///
/// Every Table 2 algorithm runs behind this one interface. The caller
/// checks [`input`](StreamingPartitioner::input) to learn which chunk
/// type to feed (METIS accepts none and partitions at seal), streams
/// chunks in any [`StreamOrder`] it likes, and seals. Chunked ingestion
/// is byte-identical to the one-shot entry points for the same element
/// order.
pub struct StreamingPartitioner<'g> {
    g: &'g Graph,
    k: usize,
    algorithm: Algorithm,
    machine: Machine<'g>,
    /// Look-ahead window size `W ≥ 1` (ADWISE-style buffered model,
    /// DESIGN.md §12). `W = 1` degenerates exactly to one-pass: the
    /// buffer never holds an element across a placement.
    window: usize,
    /// Buffered vertex records awaiting placement (≤ `W − 1` between
    /// ingest calls), in arrival order.
    wbuf_v: Vec<VertexRecord>,
    /// Buffered edges awaiting placement, in arrival order.
    wbuf_e: Vec<Edge>,
}

impl<'g> StreamingPartitioner<'g> {
    /// Initializes the state machine for `algorithm` over `g`.
    pub fn init(g: &'g Graph, algorithm: Algorithm, cfg: &PartitionerConfig) -> Self {
        let machine = if let Some(core) = boxed_edge_partitioner(g, algorithm, cfg) {
            Machine::Edge { core: EdgeIngest::init(g, core, cfg.k) }
        } else if let Some(p) = boxed_vertex_partitioner(g, algorithm, cfg) {
            let seal = match algorithm.info().model {
                CutModel::HybridCut => {
                    VertexSealMode::Hybrid { threshold: high_degree_threshold(g, cfg) }
                }
                _ => VertexSealMode::EdgeCut,
            };
            Machine::Vertex { core: VertexIngest::init(p, g.num_vertices(), cfg.k), seal }
        } else {
            Machine::Offline
        };
        StreamingPartitioner {
            g,
            k: cfg.k,
            algorithm,
            machine,
            window: cfg.window.max(1),
            wbuf_v: Vec::new(),
            wbuf_e: Vec::new(),
        }
    }

    /// The algorithm this machine runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Serializes the machine's run-varying state into the canonical
    /// snapshot format (see [`crate::snapshot`]).
    pub fn snapshot(&self) -> String {
        crate::snapshot::write_snapshot(self)
    }

    /// Rebuilds a machine from a snapshot taken at a chunk boundary;
    /// continuing the stream from that boundary is bit-identical to an
    /// uninterrupted run (see [`crate::snapshot`]).
    pub fn restore(
        g: &'g Graph,
        algorithm: Algorithm,
        cfg: &PartitionerConfig,
        text: &str,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::read_snapshot(g, algorithm, cfg, text)
    }

    /// Snapshot support: the underlying graph.
    pub(crate) fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Snapshot support: the partition count.
    pub(crate) fn k(&self) -> usize {
        self.k
    }

    /// Snapshot support: the machine variant.
    pub(crate) fn machine(&self) -> &Machine<'g> {
        &self.machine
    }

    /// Snapshot support: mutable access to the machine variant.
    pub(crate) fn machine_mut(&mut self) -> &mut Machine<'g> {
        &mut self.machine
    }

    /// The stream kind this machine ingests.
    pub fn input(&self) -> StreamInput {
        match &self.machine {
            Machine::Vertex { .. } => StreamInput::Vertices,
            Machine::Edge { .. } => StreamInput::Edges,
            Machine::Offline => StreamInput::Offline,
        }
    }

    /// Number of full stream passes the algorithm wants (1 except for
    /// the restreaming variants and 2PS; 0 for offline).
    pub fn passes(&self) -> usize {
        match &self.machine {
            Machine::Vertex { core, .. } => core.passes(),
            Machine::Edge { core } => core.passes(),
            Machine::Offline => 0,
        }
    }

    /// Elements ingested so far across all passes.
    pub fn elements_ingested(&self) -> u64 {
        match &self.machine {
            Machine::Vertex { core, .. } => core.seq(),
            Machine::Edge { core } => core.seq(),
            Machine::Offline => 0,
        }
    }

    /// Ingests a chunk of vertex records; errors if this machine
    /// consumes edges (or nothing). With a look-ahead window `W > 1`
    /// each record enters the buffer first and the highest-affinity
    /// buffered record is placed whenever the buffer reaches `W`.
    pub fn ingest_vertices(&mut self, chunk: &[VertexRecord]) -> Result<(), WrongStreamKind> {
        let expected = self.input();
        match &mut self.machine {
            Machine::Vertex { core, .. } => {
                for rec in chunk {
                    self.wbuf_v.push(rec.clone());
                    while self.wbuf_v.len() >= self.window {
                        place_best_vertex(core, &mut self.wbuf_v);
                    }
                }
                Ok(())
            }
            _ => Err(WrongStreamKind { expected }),
        }
    }

    /// Ingests a chunk of edges; errors if this machine consumes vertex
    /// records (or nothing). Buffered look-ahead as in
    /// [`ingest_vertices`](StreamingPartitioner::ingest_vertices).
    pub fn ingest_edges(&mut self, chunk: &[Edge]) -> Result<(), WrongStreamKind> {
        let expected = self.input();
        match &mut self.machine {
            Machine::Edge { core } => {
                for &e in chunk {
                    self.wbuf_e.push(e);
                    while self.wbuf_e.len() >= self.window {
                        place_best_edge(core, &mut self.wbuf_e);
                    }
                }
                Ok(())
            }
            _ => Err(WrongStreamKind { expected }),
        }
    }

    /// Drains the look-ahead buffer completely, placing the remaining
    /// elements best-first. Callers running multiple passes must flush
    /// at each pass boundary so no element leaks into the next pass;
    /// [`seal`](StreamingPartitioner::seal) flushes implicitly.
    pub fn flush_window(&mut self) {
        match &mut self.machine {
            Machine::Vertex { core, .. } => {
                while !self.wbuf_v.is_empty() {
                    place_best_vertex(core, &mut self.wbuf_v);
                }
            }
            Machine::Edge { core } => {
                while !self.wbuf_e.is_empty() {
                    place_best_edge(core, &mut self.wbuf_e);
                }
            }
            Machine::Offline => {}
        }
    }

    /// Seeds the machine's assignment state from a prior partitioning
    /// before any element streams in — the restreaming model (DESIGN.md
    /// §12): the next pass sees where every vertex *currently* lives and
    /// re-places each arriving vertex against that state. Entries equal
    /// to [`UNASSIGNED`] are skipped. Errors for machines that do not
    /// consume vertex streams.
    pub fn preload_assignment(&mut self, owner: &[PartitionId]) -> Result<(), WrongStreamKind> {
        let expected = self.input();
        match &mut self.machine {
            Machine::Vertex { core, .. } => {
                for (v, &p) in owner.iter().enumerate() {
                    if p != UNASSIGNED {
                        core.state_mut().assign(v as VertexId, p);
                    }
                }
                Ok(())
            }
            _ => Err(WrongStreamKind { expected }),
        }
    }

    /// Snapshot support: the buffered vertex records in arrival order.
    pub(crate) fn window_vertex_buffer(&self) -> &[VertexRecord] {
        &self.wbuf_v
    }

    /// Snapshot support: the buffered edges in arrival order.
    pub(crate) fn window_edge_buffer(&self) -> &[Edge] {
        &self.wbuf_e
    }

    /// Snapshot support: refills the vertex buffer during restore.
    pub(crate) fn push_window_vertex(&mut self, rec: VertexRecord) {
        self.wbuf_v.push(rec);
    }

    /// Snapshot support: refills the edge buffer during restore.
    pub(crate) fn push_window_edge(&mut self, e: Edge) {
        self.wbuf_e.push(e);
    }

    /// Closes the lifecycle and produces the [`Partitioning`].
    pub fn seal(mut self) -> Partitioning {
        self.flush_window();
        match self.machine {
            Machine::Vertex { core, seal } => match seal {
                VertexSealMode::EdgeCut => core.seal(self.g),
                VertexSealMode::Hybrid { threshold } => {
                    let owner = core.into_owner();
                    let (edge_parts, _) = place_hybrid_edges(self.g, self.k, &owner, threshold);
                    Partitioning {
                        k: self.k,
                        model: CutModel::HybridCut,
                        edge_parts,
                        vertex_owner: Some(owner),
                    }
                }
            },
            Machine::Edge { core } => core.seal(),
            Machine::Offline => MultilevelPartitioner::default().partitioning(self.g, self.k),
        }
    }
}

/// Places the buffered vertex record with the most already-assigned
/// neighbours — the look-ahead affinity rule of the buffered streaming
/// model (ADWISE-style). Ties resolve to the earliest arrival, which is
/// what makes `W = 1` degenerate exactly to the one-pass order.
fn place_best_vertex(
    core: &mut VertexIngest<Box<dyn VertexStreamPartitioner>>,
    buf: &mut Vec<VertexRecord>,
) {
    debug_assert!(!buf.is_empty(), "selection from an empty window");
    let mut best = 0usize;
    let mut best_score = 0usize;
    for (i, rec) in buf.iter().enumerate() {
        let score = rec
            .neighbors
            .iter()
            .filter(|&&nb| core.state().assignment[nb as usize] != UNASSIGNED)
            .count();
        if i == 0 || score > best_score {
            best = i;
            best_score = score;
        }
    }
    let rec = buf.remove(best);
    core.ingest(std::slice::from_ref(&rec));
}

/// Places the buffered edge with the most endpoints already replicated
/// somewhere (ties → earliest arrival); the edge-stream analogue of
/// [`place_best_vertex`].
fn place_best_edge(core: &mut EdgeIngest<'_, Box<dyn EdgeStreamPartitioner>>, buf: &mut Vec<Edge>) {
    debug_assert!(!buf.is_empty(), "selection from an empty window");
    let mut best = 0usize;
    let mut best_score = 0usize;
    for (i, e) in buf.iter().enumerate() {
        let score = usize::from(core.state().has_any_replica(e.src))
            + usize::from(core.state().has_any_replica(e.dst));
        if i == 0 || score > best_score {
            best = i;
            best_score = score;
        }
    }
    let e = buf.remove(best);
    core.ingest(&[e]);
}

/// Runs `algorithm` end to end through the incremental core with a
/// caller-chosen chunk size. Byte-identical to
/// [`partition`](crate::registry::partition) for every algorithm and
/// every chunk size ≥ 1 — the differential tests pin this down.
pub fn partition_chunked(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    chunk_size: usize,
) -> Partitioning {
    let mut sp = StreamingPartitioner::init(g, algorithm, cfg);
    match sp.input() {
        StreamInput::Vertices => {
            let mut source = VertexStreamSource::new(g, order);
            let mut chunk = Vec::new();
            for _ in 0..sp.passes() {
                source.restart();
                while source.next_chunk(chunk_size, &mut chunk) > 0 {
                    // sgp-lint: allow(no-panic-in-lib): the machine was just initialized as a vertex consumer
                    sp.ingest_vertices(&chunk).expect("vertex machine accepts vertex chunks");
                }
                sp.flush_window();
            }
        }
        StreamInput::Edges => {
            let mut source = EdgeStreamSource::new(g, order);
            let mut chunk = Vec::new();
            for _ in 0..sp.passes() {
                source.restart();
                while source.next_chunk(chunk_size, &mut chunk) > 0 {
                    // sgp-lint: allow(no-panic-in-lib): the machine was just initialized as an edge consumer
                    sp.ingest_edges(&chunk).expect("edge machine accepts edge chunks");
                }
                sp.flush_window();
            }
        }
        StreamInput::Offline => {}
    }
    sp.seal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::partition;
    use sgp_graph::generators::{erdos_renyi, rmat, ErdosRenyiConfig, RmatConfig};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 300, edges: 1800, seed: 21 })
    }

    #[test]
    fn chunked_matches_one_shot_for_every_algorithm() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed: 9 };
        for &alg in Algorithm::all() {
            let whole = partition(&g, alg, &cfg, order);
            for chunk_size in [1usize, 7, 64, usize::MAX] {
                let chunked = partition_chunked(&g, alg, &cfg, order, chunk_size);
                assert_eq!(whole.edge_parts, chunked.edge_parts, "{alg} chunk {chunk_size}");
                assert_eq!(whole.vertex_owner, chunked.vertex_owner, "{alg} chunk {chunk_size}");
                assert_eq!(whole.model, chunked.model, "{alg}");
            }
        }
    }

    #[test]
    fn facade_reports_stream_inputs_per_taxonomy() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        for &alg in Algorithm::all() {
            let sp = StreamingPartitioner::init(&g, alg, &cfg);
            let want = match alg {
                Algorithm::Metis => StreamInput::Offline,
                Algorithm::VcrHash
                | Algorithm::Dbh
                | Algorithm::Grid
                | Algorithm::PowerGraphGreedy
                | Algorithm::Hdrf
                | Algorithm::TwoPhaseHdrf => StreamInput::Edges,
                _ => StreamInput::Vertices,
            };
            assert_eq!(sp.input(), want, "{alg}");
        }
    }

    #[test]
    fn wrong_stream_kind_is_rejected_not_swallowed() {
        let g = graph();
        let cfg = PartitionerConfig::new(2);
        let mut sp = StreamingPartitioner::init(&g, Algorithm::Hdrf, &cfg);
        assert_eq!(sp.ingest_vertices(&[]), Err(WrongStreamKind { expected: StreamInput::Edges }));
        let mut sp = StreamingPartitioner::init(&g, Algorithm::Ldg, &cfg);
        assert_eq!(sp.ingest_edges(&[]), Err(WrongStreamKind { expected: StreamInput::Vertices }));
    }

    #[test]
    fn restream_passes_surface_through_the_facade() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        assert_eq!(StreamingPartitioner::init(&g, Algorithm::RestreamLdg, &cfg).passes(), 5);
        assert_eq!(StreamingPartitioner::init(&g, Algorithm::Ldg, &cfg).passes(), 1);
        assert_eq!(StreamingPartitioner::init(&g, Algorithm::Metis, &cfg).passes(), 0);
        assert_eq!(StreamingPartitioner::init(&g, Algorithm::TwoPhaseHdrf, &cfg).passes(), 2);
        let one_pass =
            PartitionerConfig { two_phase_clustering: false, ..PartitionerConfig::new(4) };
        assert_eq!(StreamingPartitioner::init(&g, Algorithm::TwoPhaseHdrf, &one_pass).passes(), 1);
    }

    #[test]
    fn partial_ingestion_seals_deterministically() {
        // Sealing early is allowed: unseen vertices land on partition 0.
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let mut a = StreamingPartitioner::init(&g, Algorithm::Ldg, &cfg);
        let mut b = StreamingPartitioner::init(&g, Algorithm::Ldg, &cfg);
        let mut source = VertexStreamSource::new(&g, StreamOrder::Natural);
        let mut chunk = Vec::new();
        source.next_chunk(50, &mut chunk);
        a.ingest_vertices(&chunk).unwrap();
        b.ingest_vertices(&chunk).unwrap();
        let (pa, pb) = (a.seal(), b.seal());
        assert_eq!(pa.edge_parts, pb.edge_parts);
        assert_eq!(pa.vertex_owner, pb.vertex_owner);
    }

    #[test]
    fn traced_drivers_survive_chunk_resizing_on_skewed_graph() {
        let g = rmat(RmatConfig { scale: 9, edge_factor: 8, ..RmatConfig::default() });
        let cfg = PartitionerConfig::new(8);
        let a = partition_chunked(&g, Algorithm::Hdrf, &cfg, StreamOrder::Bfs, 3);
        let b = partition_chunked(&g, Algorithm::Hdrf, &cfg, StreamOrder::Bfs, 1usize << 20);
        assert_eq!(a.edge_parts, b.edge_parts);
    }
}
