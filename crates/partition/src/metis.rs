//! From-scratch multilevel graph partitioner — the offline `MTS`
//! baseline.
//!
//! The paper uses METIS as "the de facto standard for large-scale graph
//! partitioning", run as a pre-processing step. This module implements
//! the same multilevel scheme (Karypis & Kumar):
//!
//! 1. **Coarsening** by heavy-edge matching until the graph is small;
//! 2. **Initial partitioning** of the coarsest graph with a greedy
//!    LDG-style growing heuristic;
//! 3. **Uncoarsening + refinement** with Fiduccia–Mattheyses-style
//!    boundary passes at every level.
//!
//! Vertex weights are supported so the workload-aware experiment
//! (Fig. 8) can partition the access-weighted graph with the same code.

use crate::assignment::{PartitionId, Partitioning};
use sgp_graph::sampling::{seeded_rng, shuffle};
use sgp_graph::Graph;

/// Tuning knobs of the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelConfig {
    /// Balance slack β (Eq. 1): every part ≤ β·W/k.
    pub balance_slack: f64,
    /// Stop coarsening when at most `coarsest_factor · k` vertices remain.
    pub coarsest_factor: usize,
    /// FM refinement passes per level.
    pub refinement_passes: usize,
    /// Seed for matching/visit orders.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            balance_slack: 1.05,
            coarsest_factor: 8,
            refinement_passes: 8,
            seed: 0x3417,
        }
    }
}

/// The multilevel partitioner (see module docs).
#[derive(Debug, Clone, Default)]
pub struct MultilevelPartitioner {
    cfg: MultilevelConfig,
}

/// Internal weighted undirected graph in CSR form.
#[derive(Debug, Clone)]
struct WGraph {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    wadj: Vec<u64>,
    vw: Vec<u64>,
}

impl WGraph {
    fn n(&self) -> usize {
        self.vw.len()
    }

    fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let (s, t) = (self.xadj[v as usize], self.xadj[v as usize + 1]);
        self.adj[s..t].iter().copied().zip(self.wadj[s..t].iter().copied())
    }

    fn total_vertex_weight(&self) -> u64 {
        self.vw.iter().sum()
    }

    /// Builds the undirected weighted view of `g`: parallel/bidirectional
    /// edges merge with summed weight, self-loops are dropped.
    fn from_graph(g: &Graph, vertex_weights: Option<&[u64]>) -> Self {
        let n = g.num_vertices();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2);
        for e in g.edges() {
            if !e.is_loop() {
                pairs.push((e.src, e.dst));
                pairs.push((e.dst, e.src));
            }
        }
        pairs.sort_unstable();
        let mut xadj = vec![0usize; n + 1];
        let mut adj: Vec<u32> = Vec::with_capacity(pairs.len());
        let mut wadj: Vec<u64> = Vec::with_capacity(pairs.len());
        let mut i = 0;
        while i < pairs.len() {
            let (u, v) = pairs[i];
            let mut w = 0u64;
            while i < pairs.len() && pairs[i] == (u, v) {
                w += 1;
                i += 1;
            }
            adj.push(v);
            wadj.push(w);
            xadj[u as usize + 1] += 1;
        }
        for v in 0..n {
            xadj[v + 1] += xadj[v];
        }
        let vw = match vertex_weights {
            Some(w) => {
                assert_eq!(w.len(), n, "vertex weight vector must cover every vertex");
                w.to_vec()
            }
            None => vec![1u64; n],
        };
        WGraph { xadj, adj, wadj, vw }
    }
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(cfg: MultilevelConfig) -> Self {
        MultilevelPartitioner { cfg }
    }

    /// Partitions `g` into `k` parts; returns the vertex ownership map.
    pub fn partition(&self, g: &Graph, k: usize) -> Vec<PartitionId> {
        self.partition_weighted(g, k, None)
    }

    /// Partitions `g` into `k` parts balancing the given vertex weights
    /// (e.g. access counts for the Fig. 8 workload-aware experiment).
    pub fn partition_weighted(
        &self,
        g: &Graph,
        k: usize,
        vertex_weights: Option<&[u64]>,
    ) -> Vec<PartitionId> {
        assert!(k >= 1, "need at least one partition");
        let n = g.num_vertices();
        if n == 0 {
            return Vec::new();
        }
        if k == 1 {
            return vec![0; n];
        }
        let wg = WGraph::from_graph(g, vertex_weights);

        self.multilevel(&wg, k)
    }

    /// Convenience: wraps [`Self::partition`] into an edge-cut
    /// [`Partitioning`] (Appendix-B edge placement).
    pub fn partitioning(&self, g: &Graph, k: usize) -> Partitioning {
        Partitioning::from_vertex_owners(g, k, self.partition(g, k))
    }

    fn multilevel(&self, wg: &WGraph, k: usize) -> Vec<PartitionId> {
        let target = (self.cfg.coarsest_factor * k).max(64);
        // Coarsening phase: remember the mapping at each level.
        let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new(); // (finer graph, fine->coarse map)
        let mut current = wg.clone();
        let mut rng = seeded_rng(self.cfg.seed);
        while current.n() > target {
            let (coarse, map) = coarsen(&current, &mut rng);
            if coarse.n() as f64 > 0.95 * current.n() as f64 {
                break; // matching stalled (e.g. star graphs)
            }
            levels.push((current, map));
            current = coarse;
        }
        // Initial partition of the coarsest graph.
        let cap = capacity(current.total_vertex_weight(), k, self.cfg.balance_slack);
        let mut assign = initial_partition(&current, k, cap, &mut rng);
        refine(&current, k, cap, self.cfg.refinement_passes, &mut assign, &mut rng);
        // Uncoarsen and refine at every level.
        while let Some((finer, map)) = levels.pop() {
            let mut fine_assign = vec![0 as PartitionId; finer.n()];
            for v in 0..finer.n() {
                fine_assign[v] = assign[map[v] as usize];
            }
            let cap = capacity(finer.total_vertex_weight(), k, self.cfg.balance_slack);
            refine(&finer, k, cap, self.cfg.refinement_passes, &mut fine_assign, &mut rng);
            assign = fine_assign;
        }
        assign
    }
}

fn capacity(total: u64, k: usize, slack: f64) -> u64 {
    ((total as f64 * slack / k as f64).ceil() as u64).max(1)
}

/// Heavy-edge matching contraction: returns the coarser graph and the
/// fine→coarse vertex map.
fn coarsen(wg: &WGraph, rng: &mut impl rand::Rng) -> (WGraph, Vec<u32>) {
    let n = wg.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut order, rng);
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for (w, weight) in wg.neighbors(v) {
            if w != v && mate[w as usize] == UNMATCHED && best.is_none_or(|(bw, _)| weight > bw) {
                best = Some((weight, w));
            }
        }
        match best {
            Some((_, w)) => {
                mate[v as usize] = w;
                mate[w as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }
    // Assign coarse ids.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        map[v as usize] = next;
        let m = mate[v as usize];
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;
    // Aggregate vertex weights and edges.
    let mut vw = vec![0u64; cn];
    for v in 0..n {
        vw[map[v] as usize] += wg.vw[v];
    }
    let mut pairs: Vec<(u32, u32, u64)> = Vec::with_capacity(wg.adj.len());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (w, weight) in wg.neighbors(v) {
            let cw = map[w as usize];
            if cv != cw {
                pairs.push((cv, cw, weight));
            }
        }
    }
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let mut xadj = vec![0usize; cn + 1];
    let mut adj = Vec::with_capacity(pairs.len());
    let mut wadj = Vec::with_capacity(pairs.len());
    let mut i = 0;
    while i < pairs.len() {
        let (a, b, _) = pairs[i];
        let mut w = 0u64;
        while i < pairs.len() && pairs[i].0 == a && pairs[i].1 == b {
            w += pairs[i].2;
            i += 1;
        }
        adj.push(b);
        wadj.push(w);
        xadj[a as usize + 1] += 1;
    }
    for v in 0..cn {
        xadj[v + 1] += xadj[v];
    }
    (WGraph { xadj, adj, wadj, vw }, map)
}

/// Greedy LDG-style initial partition of the coarsest graph.
fn initial_partition(
    wg: &WGraph,
    k: usize,
    cap: u64,
    rng: &mut impl rand::Rng,
) -> Vec<PartitionId> {
    let n = wg.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut order, rng);
    let mut assign = vec![PartitionId::MAX; n];
    let mut loads = vec![0u64; k];
    for &v in &order {
        let mut conn = vec![0u64; k];
        for (w, weight) in wg.neighbors(v) {
            let p = assign[w as usize];
            if p != PartitionId::MAX {
                conn[p as usize] += weight;
            }
        }
        let mut best: Option<(f64, u64, usize)> = None;
        for i in 0..k {
            if loads[i] + wg.vw[v as usize] > cap {
                continue;
            }
            let score = conn[i] as f64 * (1.0 - loads[i] as f64 / cap as f64);
            let cand = (score, loads[i], i);
            best = Some(match best {
                None => cand,
                Some(b) if score > b.0 || (score == b.0 && loads[i] < b.1) => cand,
                Some(b) => b,
            });
        }
        let p = best.map(|(_, _, i)| i).unwrap_or_else(|| {
            // All at capacity: least loaded (slack rounding can cause this).
            // sgp-lint: allow(no-panic-in-lib): 0..k is non-empty because PartitionerConfig::new asserts k >= 1
            (0..k).min_by_key(|&i| loads[i]).expect("k >= 1")
        });
        assign[v as usize] = p as PartitionId;
        loads[p] += wg.vw[v as usize];
    }
    assign
}

/// Fiduccia–Mattheyses boundary refinement with hill climbing: each pass
/// greedily applies the globally best move (even when its gain is
/// negative, to escape local minima), locks moved vertices, and finally
/// rolls back to the best prefix of the move sequence — the classic
/// KL/FM scheme METIS uses at every uncoarsening level.
fn refine(
    wg: &WGraph,
    k: usize,
    cap: u64,
    passes: usize,
    assign: &mut [PartitionId],
    rng: &mut impl rand::Rng,
) {
    let n = wg.n();
    let mut loads = vec![0u64; k];
    for v in 0..n {
        loads[assign[v] as usize] += wg.vw[v];
    }
    // Best admissible move for `v`: (gain, target). Gain may be negative.
    let best_move = |v: u32, assign: &[PartitionId], loads: &[u64]| -> Option<(i64, usize)> {
        let cur = assign[v as usize] as usize;
        let mut conn = vec![0u64; k];
        let mut boundary = false;
        for (w, weight) in wg.neighbors(v) {
            let p = assign[w as usize] as usize;
            conn[p] += weight;
            if p != cur {
                boundary = true;
            }
        }
        if !boundary {
            return None;
        }
        let internal = conn[cur] as i64;
        let mut best: Option<(i64, usize)> = None;
        for (i, &c) in conn.iter().enumerate() {
            if i == cur || c == 0 || loads[i] + wg.vw[v as usize] > cap {
                continue;
            }
            let gain = c as i64 - internal;
            if best.is_none_or(|(bg, bi)| gain > bg || (gain == bg && loads[i] < loads[bi])) {
                best = Some((gain, i));
            }
        }
        best
    };

    let mut order: Vec<u32> = (0..n as u32).collect();
    for pass in 0..passes {
        shuffle(&mut order, rng);
        // Max-heap of candidate moves with lazy revalidation.
        let mut heap: std::collections::BinaryHeap<(i64, u32, u32)> =
            std::collections::BinaryHeap::new();
        for &v in &order {
            if let Some((gain, target)) = best_move(v, assign, &loads) {
                heap.push((gain, v, target as u32));
            }
        }
        let mut locked = vec![false; n];
        let mut applied: Vec<(u32, PartitionId, PartitionId)> = Vec::new(); // (v, from, to)
        let mut cum = 0i64;
        let mut best_cum = 0i64;
        let mut best_len = 0usize;
        let move_budget = n.max(16);
        while let Some((gain, v, target)) = heap.pop() {
            if locked[v as usize] || applied.len() >= move_budget {
                continue;
            }
            // Lazy revalidation: the neighbourhood may have changed since
            // this entry was pushed.
            match best_move(v, assign, &loads) {
                Some((g2, t2)) if g2 == gain && t2 == target as usize => {}
                Some((g2, t2)) => {
                    heap.push((g2, v, t2 as u32));
                    continue;
                }
                None => continue,
            }
            // Stop exploring a hopeless downhill streak.
            if cum + gain < best_cum - (wg.adj.len() as i64 / 10).max(8) {
                break;
            }
            let from = assign[v as usize];
            loads[from as usize] -= wg.vw[v as usize];
            loads[target as usize] += wg.vw[v as usize];
            assign[v as usize] = target as PartitionId;
            locked[v as usize] = true;
            applied.push((v, from, target as PartitionId));
            cum += gain;
            if cum > best_cum {
                best_cum = cum;
                best_len = applied.len();
            }
            // Refresh unlocked neighbours' candidate moves.
            for (w, _) in wg.neighbors(v) {
                if !locked[w as usize] {
                    if let Some((g, t)) = best_move(w, assign, &loads) {
                        heap.push((g, w, t as u32));
                    }
                }
            }
        }
        // Roll back past the best prefix.
        for &(v, from, _to) in applied[best_len..].iter().rev() {
            let cur = assign[v as usize];
            loads[cur as usize] -= wg.vw[v as usize];
            loads[from as usize] += wg.vw[v as usize];
            assign[v as usize] = from;
        }
        if best_cum <= 0 && pass > 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionerConfig;
    use crate::edge_cut::{run_vertex_stream, Fennel, HashVertex};
    use crate::metrics;
    use sgp_graph::generators::{road_grid, snb_social, RoadConfig, SnbConfig};
    use sgp_graph::{GraphBuilder, StreamOrder};

    #[test]
    fn metis_two_cliques_optimal_cut() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 8u32] {
            for i in 0..8 {
                for j in 0..8 {
                    if i != j {
                        b.push_edge(base + i, base + j);
                    }
                }
            }
        }
        b.push_edge(0, 8);
        let g = b.build();
        let owner = MultilevelPartitioner::default().partition(&g, 2);
        let ecr = metrics::edge_cut_ratio_from_owner(&g, &owner);
        assert!(ecr <= 1.5 / g.num_edges() as f64 + 1e-9, "should cut only the bridge: {ecr}");
    }

    #[test]
    fn metis_beats_streaming_on_community_graph() {
        let g = snb_social(SnbConfig {
            persons: 2000,
            communities: 25,
            avg_friends: 10.0,
            ..SnbConfig::default()
        });
        let cfg = PartitionerConfig::new(8);
        let mts = MultilevelPartitioner::default().partitioning(&g, 8);
        let fnl = run_vertex_stream(
            &g,
            &mut Fennel::new(&cfg, g.num_vertices(), g.num_edges()),
            8,
            StreamOrder::Random { seed: 3 },
        );
        let hash = run_vertex_stream(&g, &mut HashVertex::new(&cfg), 8, StreamOrder::Natural);
        let e_mts = metrics::edge_cut_ratio(&g, &mts).unwrap();
        let e_fnl = metrics::edge_cut_ratio(&g, &fnl).unwrap();
        let e_hash = metrics::edge_cut_ratio(&g, &hash).unwrap();
        // Table 4 ordering: MTS < FNL < ECR.
        assert!(e_mts < e_fnl, "MTS {e_mts} should beat FENNEL {e_fnl}");
        assert!(e_fnl < e_hash, "FENNEL {e_fnl} should beat hash {e_hash}");
    }

    #[test]
    fn metis_respects_balance() {
        let g = road_grid(RoadConfig { width: 40, height: 40, ..RoadConfig::default() });
        let owner = MultilevelPartitioner::default().partition(&g, 4);
        let mut counts = vec![0usize; 4];
        for &p in &owner {
            counts[p as usize] += 1;
        }
        let imb = metrics::load_imbalance(&counts);
        assert!(imb <= 1.06, "imbalance {imb} exceeds slack");
    }

    #[test]
    fn metis_on_road_network_cuts_little() {
        let g = road_grid(RoadConfig { width: 40, height: 40, ..RoadConfig::default() });
        let owner = MultilevelPartitioner::default().partition(&g, 4);
        let ecr = metrics::edge_cut_ratio_from_owner(&g, &owner);
        // A 40x40 lattice 4-way cut needs ~2*40 of ~5600 directed edges.
        assert!(ecr < 0.1, "lattice edge-cut ratio {ecr}");
    }

    #[test]
    fn weighted_partition_balances_weights_not_counts() {
        // Path of 12 vertices; vertex 0 carries almost all the weight.
        let mut b = GraphBuilder::new();
        for i in 0..11u32 {
            b.push_edge(i, i + 1);
            b.push_edge(i + 1, i);
        }
        let g = b.build();
        let mut w = vec![1u64; 12];
        w[0] = 11;
        let owner = MultilevelPartitioner::default().partition_weighted(&g, 2, Some(&w));
        let mut loads = [0u64; 2];
        for (v, &p) in owner.iter().enumerate() {
            loads[p as usize] += w[v];
        }
        let imb = *loads.iter().max().unwrap() as f64 / (loads.iter().sum::<u64>() as f64 / 2.0);
        assert!(imb <= 1.2, "weighted imbalance {imb}");
    }

    #[test]
    fn k_one_is_trivial() {
        let g = road_grid(RoadConfig { width: 10, height: 10, ..RoadConfig::default() });
        let owner = MultilevelPartitioner::default().partition(&g, 1);
        assert!(owner.iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build();
        assert!(MultilevelPartitioner::default().partition(&g, 4).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = snb_social(SnbConfig {
            persons: 800,
            communities: 10,
            avg_friends: 8.0,
            ..SnbConfig::default()
        });
        let p = MultilevelPartitioner::default();
        assert_eq!(p.partition(&g, 4), p.partition(&g, 4));
    }
}
