//! Heterogeneous-cluster extensions (the paper's Appendix A).
//!
//! "The algorithms discussed so far assume a homogeneous cluster where
//! each machine has identical resources. LeBeane et al. propose an
//! extension to the vertex-cut SGP algorithms [...] that takes cluster
//! heterogeneity into consideration. Similarly, Xu et al. propose
//! Balanced Min-Increased as an edge-cut SGP algorithm that assigns each
//! arriving vertex u to a partition that minimizes the marginal cost
//! under balance constraints."
//!
//! This module provides both flavours: [`HeteroLdg`] (capacity-weighted
//! LDG, the BMI-style edge-cut variant) and [`HeteroHdrf`]
//! (capacity-weighted HDRF, the LeBeane-style vertex-cut variant).
//! A machine with weight 2.0 is expected to host twice the load of a
//! machine with weight 1.0.

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::edge_cut::{VertexStreamPartitioner, VertexStreamState};
use crate::vertex_cut::{EdgeStreamPartitioner, EdgeStreamState};
use sgp_graph::stream::VertexRecord;
use sgp_graph::Edge;

/// Relative capacities of a heterogeneous cluster.
#[derive(Debug, Clone)]
pub struct ClusterProfile {
    /// Per-partition capacity shares, normalized to sum 1.
    shares: Vec<f64>,
}

impl ClusterProfile {
    /// Builds a profile from raw capacity weights (cores, memory, …).
    ///
    /// # Panics
    /// Panics if `weights` is empty or any weight is non-positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one machine");
        assert!(weights.iter().all(|&w| w > 0.0), "capacities must be positive");
        let total: f64 = weights.iter().sum();
        ClusterProfile { shares: weights.iter().map(|w| w / total).collect() }
    }

    /// A homogeneous profile of `k` equal machines.
    pub fn homogeneous(k: usize) -> Self {
        Self::new(&vec![1.0; k])
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.shares.len()
    }

    /// The capacity share of machine `i` (sums to 1 over machines).
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i]
    }

    /// Absolute capacity of machine `i` for a total load of `total`
    /// elements with slack β.
    pub fn capacity(&self, i: usize, total: usize, slack: f64) -> f64 {
        (self.shares[i] * total as f64 * slack).max(1.0)
    }
}

/// Capacity-weighted LDG: Eq. (4) with a per-partition capacity
/// `C_i = β·n·share_i` instead of the uniform `β·n/k`.
#[derive(Debug, Clone)]
pub struct HeteroLdg {
    profile: ClusterProfile,
    capacities: Vec<f64>,
}

impl HeteroLdg {
    /// Creates the partitioner for a graph with `n` vertices.
    ///
    /// # Panics
    /// Panics if the profile size differs from `cfg.k`.
    pub fn new(cfg: &PartitionerConfig, profile: ClusterProfile, n: usize) -> Self {
        assert_eq!(profile.k(), cfg.k, "profile must cover every partition");
        let capacities = (0..cfg.k).map(|i| profile.capacity(i, n, cfg.balance_slack)).collect();
        HeteroLdg { profile, capacities }
    }
}

impl VertexStreamPartitioner for HeteroLdg {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        let k = self.profile.k();
        let hist = state.neighbor_histogram(&rec.neighbors, k);
        let mut best: Option<(f64, f64, usize)> = None; // (score, fill for tie-break, index)
        for (i, &h) in hist.iter().enumerate() {
            let size = state.sizes[i] as f64;
            if size >= self.capacities[i] {
                continue;
            }
            let fill = size / self.capacities[i];
            // +1 smoothing keeps capacity-seeking behaviour alive for
            // vertices with no placed neighbours.
            let score = (h as f64 + 1.0) * (1.0 - fill);
            let candidate = (score, fill, i);
            best = Some(match best {
                None => candidate,
                Some(b) if score > b.0 + 1e-12 || ((score - b.0).abs() <= 1e-12 && fill < b.1) => {
                    candidate
                }
                Some(b) => b,
            });
        }
        best.map(|(_, _, i)| i as PartitionId).unwrap_or_else(|| {
            // Everything at capacity: relative least-filled machine.
            (0..k)
                .min_by(|&a, &b| {
                    let fa = state.sizes[a] as f64 / self.capacities[a];
                    let fb = state.sizes[b] as f64 / self.capacities[b];
                    // sgp-lint: allow(no-panic-in-lib): capacities are validated positive at construction, so the fill ratios are finite
                    fa.partial_cmp(&fb).expect("finite fill")
                })
                // sgp-lint: allow(no-panic-in-lib): 0..k is non-empty because PartitionerConfig::new asserts k >= 1
                .expect("k >= 1") as PartitionId
        })
    }

    fn name(&self) -> &'static str {
        "hLDG"
    }
}

/// Capacity-weighted HDRF: Eq. (7) with the balance term computed on the
/// *relative fill* `|e(P_i)| / C_i` of each machine.
#[derive(Debug, Clone)]
pub struct HeteroHdrf {
    profile: ClusterProfile,
    lambda: f64,
    capacities: Vec<f64>,
}

impl HeteroHdrf {
    /// Creates the partitioner for a graph with `m` edges.
    ///
    /// # Panics
    /// Panics if the profile size differs from `cfg.k`.
    pub fn new(cfg: &PartitionerConfig, profile: ClusterProfile, m: usize) -> Self {
        assert_eq!(profile.k(), cfg.k, "profile must cover every partition");
        let capacities = (0..cfg.k).map(|i| profile.capacity(i, m, cfg.balance_slack)).collect();
        HeteroHdrf { profile, lambda: cfg.hdrf_lambda, capacities }
    }
}

impl EdgeStreamPartitioner for HeteroHdrf {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        let k = self.profile.k();
        let du = state.partial_degree(e.src) as f64 + 1.0;
        let dv = state.partial_degree(e.dst) as f64 + 1.0;
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;
        let mut best = (f64::NEG_INFINITY, 0 as PartitionId);
        for i in 0..k {
            let fill = state.edge_counts[i] as f64 / self.capacities[i];
            let mut score = self.lambda * (1.0 - fill);
            if state.has_replica(e.src, i as PartitionId) {
                score += 1.0 + (1.0 - theta_u);
            }
            if state.has_replica(e.dst, i as PartitionId) {
                score += 1.0 + (1.0 - theta_v);
            }
            if score > best.0 {
                best = (score, i as PartitionId);
            }
        }
        best.1
    }

    fn name(&self) -> &'static str {
        "hHDRF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::run_vertex_stream;
    use crate::vertex_cut::run_edge_stream;
    use sgp_graph::generators::{erdos_renyi, rmat, ErdosRenyiConfig, RmatConfig};
    use sgp_graph::StreamOrder;

    #[test]
    fn homogeneous_profile_is_uniform() {
        let p = ClusterProfile::homogeneous(4);
        for i in 0..4 {
            assert!((p.share(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_normalizes_weights() {
        let p = ClusterProfile::new(&[2.0, 1.0, 1.0]);
        assert!((p.share(0) - 0.5).abs() < 1e-12);
        assert!((p.capacity(0, 100, 1.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn profile_rejects_zero_capacity() {
        ClusterProfile::new(&[1.0, 0.0]);
    }

    #[test]
    fn hetero_ldg_loads_follow_capacities() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 4000, edges: 16_000, seed: 31 });
        let cfg = PartitionerConfig::new(4);
        let profile = ClusterProfile::new(&[4.0, 2.0, 1.0, 1.0]);
        let mut p = HeteroLdg::new(&cfg, profile.clone(), g.num_vertices());
        let result = run_vertex_stream(&g, &mut p, 4, StreamOrder::Random { seed: 1 });
        let counts = result.vertices_per_partition().unwrap();
        let total: usize = counts.iter().sum();
        for (i, &count) in counts.iter().enumerate() {
            let actual = count as f64 / total as f64;
            let target = profile.share(i);
            assert!(
                (actual - target).abs() < 0.35 * target + 0.02,
                "machine {i}: share {actual:.3} vs target {target:.3}"
            );
        }
        // The big machine must clearly host the most vertices.
        assert!(counts[0] > counts[2] && counts[0] > counts[3]);
    }

    #[test]
    fn hetero_hdrf_loads_follow_capacities() {
        let g = rmat(RmatConfig { scale: 11, edge_factor: 10, ..RmatConfig::default() });
        let cfg = PartitionerConfig::new(4);
        let profile = ClusterProfile::new(&[3.0, 1.0, 1.0, 1.0]);
        let mut p = HeteroHdrf::new(&cfg, profile.clone(), g.num_edges());
        let result = run_edge_stream(&g, &mut p, 4, StreamOrder::Random { seed: 2 });
        let counts = result.edges_per_partition();
        let total: usize = counts.iter().sum();
        let big = counts[0] as f64 / total as f64;
        assert!(
            (big - 0.5).abs() < 0.15,
            "big machine should hold ~half the edges, holds {big:.3}"
        );
    }

    #[test]
    fn hetero_with_uniform_profile_close_to_standard_balance() {
        let g = rmat(RmatConfig { scale: 10, edge_factor: 8, ..RmatConfig::default() });
        let cfg = PartitionerConfig::new(4);
        let mut p = HeteroHdrf::new(&cfg, ClusterProfile::homogeneous(4), g.num_edges());
        let result = run_edge_stream(&g, &mut p, 4, StreamOrder::Random { seed: 3 });
        let imb = crate::metrics::load_imbalance(&result.edges_per_partition());
        assert!(imb < 1.3, "uniform hetero-HDRF imbalance {imb}");
    }

    #[test]
    #[should_panic(expected = "profile must cover every partition")]
    fn profile_size_must_match_k() {
        let cfg = PartitionerConfig::new(4);
        HeteroLdg::new(&cfg, ClusterProfile::homogeneous(3), 100);
    }
}
