//! Algorithm registry: the paper's Table 1/Table 2 taxonomy as code,
//! plus a uniform driver for running any algorithm by name.

use crate::assignment::{CutModel, Partitioning};
use crate::config::PartitionerConfig;
use crate::edge_cut::{run_vertex_stream_traced, Fennel, HashVertex, Ldg, Restream};
use crate::hybrid::{ginger_with_stats, hybrid_random_with_stats};
use crate::metis::MultilevelPartitioner;
use crate::two_phase::TwoPhase;
use crate::vertex_cut::{
    run_edge_stream_traced, Dbh, GridConstrained, HashEdge, Hdrf, PowerGraphGreedy,
};
use serde::{Deserialize, Serialize};
use sgp_graph::{Graph, StreamOrder};
use sgp_trace::{keys, NullSink, SpanGuardExt, TraceSink};

/// Format version of `tests/goldens/ALGORITHM_SURFACES`, the audited
/// fallback registry of the `algorithm-surface-exhaustiveness` lint.
/// Pinned in `tests/goldens/SCHEMA_VERSIONS`; bump only together with
/// the pin and a registry re-audit in the same change.
pub const ALGORITHM_SURFACES_SCHEMA_VERSION: u32 = 1;

/// Every partitioning algorithm in the study (Table 2 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Edge-cut hash-based random vertex placement.
    EcrHash,
    /// Linear Deterministic Greedy (Stanton & Kliot).
    Ldg,
    /// FENNEL (Tsourakakis et al.).
    Fennel,
    /// Re-streaming LDG (Nishimura & Ugander), 5 passes.
    RestreamLdg,
    /// Re-streaming FENNEL, 5 passes.
    RestreamFennel,
    /// Vertex-cut hash-based random edge placement.
    VcrHash,
    /// Degree-Based Hashing (Xie et al.).
    Dbh,
    /// Constrained 2-D grid placement (Jain et al.).
    Grid,
    /// PowerGraph oblivious greedy.
    PowerGraphGreedy,
    /// HDRF (Petroni et al.).
    Hdrf,
    /// PowerLyra hybrid random.
    HybridRandom,
    /// Ginger (PowerLyra hybrid greedy).
    Ginger,
    /// Offline multilevel baseline (METIS-like).
    Metis,
    /// 2PS two-phase edge partitioning (streaming clustering pass +
    /// cluster-affine HDRF assignment pass).
    TwoPhaseHdrf,
}

/// Input stream model of an algorithm (Table 1's "Stream" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKind {
    /// Vertex + full adjacency list.
    Vertex,
    /// Individual edges in arbitrary order.
    Edge,
    /// Ginger processes both (two-phase).
    Hybrid,
    /// Offline: the whole graph at once.
    Offline,
}

/// Static description of an algorithm: the row it occupies in Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmInfo {
    /// Short Table 2 abbreviation.
    pub short_name: &'static str,
    /// Long human name with citation.
    pub long_name: &'static str,
    /// The cut model the algorithm produces.
    pub model: CutModel,
    /// Input stream model.
    pub stream: StreamKind,
    /// Structural cost metric the algorithm optimizes (Table 1).
    pub cost_metric: &'static str,
    /// Parallelization requirement (Table 1): "yes" means
    /// embarrassingly parallel, otherwise the synchronization needed.
    pub parallelization: &'static str,
    /// Placement method family (Table 1's "Method" column).
    pub method: &'static str,
}

impl Algorithm {
    /// Every algorithm, in the column order used by the paper's Table 2.
    pub fn all() -> &'static [Algorithm] {
        &[
            Algorithm::VcrHash,
            Algorithm::Grid,
            Algorithm::Dbh,
            Algorithm::PowerGraphGreedy,
            Algorithm::Hdrf,
            Algorithm::HybridRandom,
            Algorithm::Ginger,
            Algorithm::EcrHash,
            Algorithm::Ldg,
            Algorithm::Fennel,
            Algorithm::RestreamLdg,
            Algorithm::RestreamFennel,
            Algorithm::Metis,
            Algorithm::TwoPhaseHdrf,
        ]
    }

    /// The algorithm set used in the offline-analytics experiments
    /// (Table 2, "Offline Analytics" row: VCR, Grid, DBH, HDRF, HCR, HG,
    /// ECR, LDG, FNL, MTS).
    pub fn offline_suite() -> &'static [Algorithm] {
        &[
            Algorithm::VcrHash,
            Algorithm::Grid,
            Algorithm::Dbh,
            Algorithm::Hdrf,
            Algorithm::HybridRandom,
            Algorithm::Ginger,
            Algorithm::EcrHash,
            Algorithm::Ldg,
            Algorithm::Fennel,
            Algorithm::Metis,
        ]
    }

    /// The edge-cut-only set used in the online-query experiments
    /// (Table 2, "Online Queries" row: ECR, LDG, FNL, MTS — JanusGraph
    /// "does not provide support for vertex-cut partitioning").
    pub fn online_suite() -> &'static [Algorithm] {
        &[Algorithm::EcrHash, Algorithm::Ldg, Algorithm::Fennel, Algorithm::Metis]
    }

    /// Whether [`partition_multi_loader`](crate::loaders::partition_multi_loader)
    /// can split this algorithm's stream across parallel loaders: true
    /// for every streaming algorithm (hash methods need no communication,
    /// greedy methods place against periodically-synchronized shared
    /// state — Table 1's "parallelization" column), false for the
    /// offline METIS baseline (which reads the whole graph at seal time)
    /// and for the two-pass 2PS partitioner (whose clustering pass must
    /// see the entire stream before any edge is placed).
    pub fn supports_parallel_loaders(&self) -> bool {
        // Exhaustive on purpose: adding a variant forces an explicit
        // decision here (the `algorithm-surface-exhaustiveness` lint
        // checks this surface).
        match self {
            Algorithm::EcrHash
            | Algorithm::Ldg
            | Algorithm::Fennel
            | Algorithm::RestreamLdg
            | Algorithm::RestreamFennel
            | Algorithm::VcrHash
            | Algorithm::Dbh
            | Algorithm::Grid
            | Algorithm::PowerGraphGreedy
            | Algorithm::Hdrf
            | Algorithm::HybridRandom
            | Algorithm::Ginger => true,
            // Metis is offline (full-graph); 2PS-HDRF's clustering phase
            // is order-sensitive across the whole stream.
            Algorithm::Metis | Algorithm::TwoPhaseHdrf => false,
        }
    }

    /// Static Table 1 row for this algorithm.
    pub fn info(&self) -> AlgorithmInfo {
        use Algorithm::*;
        use CutModel::*;
        use StreamKind::*;
        match self {
            EcrHash => AlgorithmInfo {
                short_name: "ECR",
                long_name: "Hash-based random vertex placement",
                model: EdgeCut,
                stream: Vertex,
                cost_metric: "Edge-cut Ratio",
                parallelization: "Yes (hash, no communication)",
                method: "Hash",
            },
            Ldg => AlgorithmInfo {
                short_name: "LDG",
                long_name: "Linear Deterministic Greedy [Stanton & Kliot 2012]",
                model: EdgeCut,
                stream: Vertex,
                cost_metric: "Edge-cut Ratio",
                parallelization: "Inter-Stream Comm.",
                method: "Greedy",
            },
            Fennel => AlgorithmInfo {
                short_name: "FNL",
                long_name: "FENNEL [Tsourakakis et al. 2014]",
                model: EdgeCut,
                stream: Vertex,
                cost_metric: "Edge-cut Ratio",
                parallelization: "Inter-Stream Comm.",
                method: "Greedy",
            },
            RestreamLdg => AlgorithmInfo {
                short_name: "reLDG",
                long_name: "Restreaming LDG [Nishimura & Ugander 2013]",
                model: EdgeCut,
                stream: Vertex,
                cost_metric: "Edge-cut Ratio",
                parallelization: "Intra-Stream Comm.",
                method: "Greedy",
            },
            RestreamFennel => AlgorithmInfo {
                short_name: "reFNL",
                long_name: "Re-FENNEL [Nishimura & Ugander 2013]",
                model: EdgeCut,
                stream: Vertex,
                cost_metric: "Edge-cut Ratio",
                parallelization: "Intra-Stream Comm.",
                method: "Greedy",
            },
            VcrHash => AlgorithmInfo {
                short_name: "VCR",
                long_name: "Hash-based random edge placement",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Yes (hash, no communication)",
                method: "Hash",
            },
            Dbh => AlgorithmInfo {
                short_name: "DBH",
                long_name: "Degree-Based Hashing [Xie et al. 2014]",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Yes",
                method: "Hash",
            },
            Grid => AlgorithmInfo {
                short_name: "Grid",
                long_name: "Constrained grid placement [Jain et al. 2013]",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Yes",
                method: "Constrained",
            },
            PowerGraphGreedy => AlgorithmInfo {
                short_name: "PGG",
                long_name: "PowerGraph oblivious greedy [Gonzalez et al. 2012]",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Inter-Stream Comm.",
                method: "Greedy",
            },
            Hdrf => AlgorithmInfo {
                short_name: "HDRF",
                long_name: "High-Degree Replicated First [Petroni et al. 2015]",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Inter-Stream Comm.",
                method: "Greedy",
            },
            HybridRandom => AlgorithmInfo {
                short_name: "HCR",
                long_name: "PowerLyra hybrid random [Chen et al. 2015]",
                model: HybridCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "Yes",
                method: "Hash",
            },
            Ginger => AlgorithmInfo {
                short_name: "HG",
                long_name: "Ginger [Chen et al. 2015]",
                model: HybridCut,
                stream: Hybrid,
                cost_metric: "Replication Factor",
                parallelization: "Inter-Stream Comm.",
                method: "Greedy",
            },
            Metis => AlgorithmInfo {
                short_name: "MTS",
                long_name: "Multilevel offline partitioner (METIS-like)",
                model: EdgeCut,
                stream: Offline,
                cost_metric: "Edge-cut Ratio",
                parallelization: "No (offline pre-processing)",
                method: "Multilevel",
            },
            TwoPhaseHdrf => AlgorithmInfo {
                short_name: "2PS",
                long_name: "Two-phase streaming (clustering + HDRF) [Mayer et al. 2020]",
                model: VertexCut,
                stream: Edge,
                cost_metric: "Replication Factor",
                parallelization: "No (two-pass, clustering state)",
                method: "Clustering + Greedy",
            },
        }
    }

    /// Short Table 2 abbreviation.
    pub fn short_name(&self) -> &'static str {
        self.info().short_name
    }

    /// Parses a Table 2 abbreviation (case-insensitive).
    pub fn from_short_name(name: &str) -> Option<Algorithm> {
        Algorithm::all().iter().copied().find(|a| a.short_name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.short_name())
    }
}

/// Runs `algorithm` on `g` with the shared config and stream order; the
/// single entry point the experiment harness uses.
pub fn partition(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
) -> Partitioning {
    partition_traced(g, algorithm, cfg, order, &mut NullSink)
}

/// [`partition`] with trace instrumentation: wraps the run in a
/// `partition.run` span (keyed by the algorithm's position in
/// [`Algorithm::all`], stamps are logical element counts) and flushes
/// the per-algorithm decision counters — balance tie-breaks, hybrid
/// degree-threshold hits, vertex-cut mirror creations — into `sink`.
/// The produced [`Partitioning`] is identical to the untraced one; the
/// sink only observes (the workspace differential tests enforce this
/// for every algorithm).
pub fn partition_traced<S: TraceSink>(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    sink: &mut S,
) -> Partitioning {
    let k = cfg.k;
    let n = g.num_vertices();
    let m = g.num_edges();
    let alg_key = Algorithm::all().iter().position(|&a| a == algorithm).unwrap_or(0) as u64;
    let run_span = sink.guard_span(keys::PARTITION_RUN, alg_key, 0);
    let p = match algorithm {
        Algorithm::EcrHash => {
            run_vertex_stream_traced(g, &mut HashVertex::new(cfg), k, order, sink)
        }
        Algorithm::Ldg => run_vertex_stream_traced(g, &mut Ldg::new(cfg, n), k, order, sink),
        Algorithm::Fennel => {
            run_vertex_stream_traced(g, &mut Fennel::new(cfg, n, m), k, order, sink)
        }
        Algorithm::RestreamLdg => {
            run_vertex_stream_traced(g, &mut Restream::new(Ldg::new(cfg, n), 5), k, order, sink)
        }
        Algorithm::RestreamFennel => run_vertex_stream_traced(
            g,
            &mut Restream::new(Fennel::new(cfg, n, m), 5),
            k,
            order,
            sink,
        ),
        Algorithm::VcrHash => run_edge_stream_traced(g, &mut HashEdge::new(cfg), k, order, sink),
        Algorithm::Dbh => {
            run_edge_stream_traced(g, &mut Dbh::with_exact_degrees(cfg, g), k, order, sink)
        }
        Algorithm::Grid => {
            run_edge_stream_traced(g, &mut GridConstrained::new(cfg), k, order, sink)
        }
        Algorithm::PowerGraphGreedy => {
            run_edge_stream_traced(g, &mut PowerGraphGreedy::new(cfg), k, order, sink)
        }
        Algorithm::Hdrf => run_edge_stream_traced(g, &mut Hdrf::new(cfg, m), k, order, sink),
        Algorithm::HybridRandom => {
            let (p, stats) = hybrid_random_with_stats(g, cfg);
            if sink.enabled() {
                sink.counter_add(keys::PARTITION_EDGES_PLACED, 0, m as u64);
                stats.flush_into(sink);
            }
            p
        }
        Algorithm::Ginger => {
            let (p, stats) = ginger_with_stats(g, cfg, order);
            if sink.enabled() {
                sink.counter_add(keys::PARTITION_EDGES_PLACED, 0, m as u64);
                stats.flush_into(sink);
            }
            p
        }
        Algorithm::Metis => MultilevelPartitioner::default().partitioning(g, k),
        Algorithm::TwoPhaseHdrf => {
            run_edge_stream_traced(g, &mut TwoPhase::new(cfg, m), k, order, sink)
        }
    };
    run_span.exit(sink, (n + m) as u64);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn every_algorithm_runs_end_to_end() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 400, edges: 2400, seed: 1 });
        let cfg = PartitionerConfig::new(4);
        for &alg in Algorithm::all() {
            let p = partition(&g, alg, &cfg, StreamOrder::Random { seed: 2 });
            assert_eq!(p.k, 4, "{alg}");
            assert_eq!(p.edge_parts.len(), g.num_edges(), "{alg}");
            let q = QualityReport::measure(&g, &p);
            assert!(q.replication_factor >= 1.0, "{alg}: rf {}", q.replication_factor);
            assert!(q.replication_factor <= 4.0, "{alg}: rf exceeds k");
        }
    }

    #[test]
    fn short_names_are_unique() {
        let mut names: Vec<&str> = Algorithm::all().iter().map(|a| a.short_name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn short_name_roundtrip() {
        for &a in Algorithm::all() {
            assert_eq!(Algorithm::from_short_name(a.short_name()), Some(a));
        }
        assert_eq!(Algorithm::from_short_name("hdrf"), Some(Algorithm::Hdrf));
        assert_eq!(Algorithm::from_short_name("nope"), None);
    }

    #[test]
    fn suites_match_table2() {
        assert_eq!(Algorithm::offline_suite().len(), 10);
        assert_eq!(Algorithm::online_suite().len(), 4);
        assert!(Algorithm::online_suite().iter().all(|a| a.info().model == CutModel::EdgeCut));
    }

    #[test]
    fn cut_models_match_taxonomy() {
        assert_eq!(Algorithm::Hdrf.info().model, CutModel::VertexCut);
        assert_eq!(Algorithm::Ldg.info().model, CutModel::EdgeCut);
        assert_eq!(Algorithm::Ginger.info().model, CutModel::HybridCut);
    }
}
