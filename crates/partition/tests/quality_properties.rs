//! Cross-algorithm quality properties on structured generators: the
//! inequalities the paper's Fig. 2 narrative relies on, tested as code.

use sgp_graph::generators::{rmat, road_grid, snb_social, RmatConfig, RoadConfig, SnbConfig};
use sgp_graph::{Graph, StreamOrder};
use sgp_partition::metrics::{
    expected_hash_edge_cut, expected_rf_random_vertex_cut, load_imbalance, replication_factor,
    QualityReport,
};
use sgp_partition::{partition, Algorithm, PartitionerConfig};

fn order() -> StreamOrder {
    StreamOrder::Random { seed: 0xABCD }
}

fn rf(g: &Graph, alg: Algorithm, k: usize) -> f64 {
    let cfg = PartitionerConfig::new(k);
    replication_factor(g, &partition(g, alg, &cfg, order()))
}

#[test]
fn every_greedy_vertex_cut_beats_random_on_every_generator() {
    // "they can provide significant improvements over random
    // partitioning" (§2) — HDRF/greedy/DBH must beat VCR everywhere.
    let graphs: Vec<(&str, Graph)> = vec![
        ("rmat", rmat(RmatConfig { scale: 10, edge_factor: 8, ..RmatConfig::default() })),
        ("road", road_grid(RoadConfig { width: 30, height: 30, ..RoadConfig::default() })),
        (
            "snb",
            snb_social(SnbConfig {
                persons: 1500,
                communities: 15,
                avg_friends: 8.0,
                ..SnbConfig::default()
            }),
        ),
    ];
    for (name, g) in &graphs {
        let random = rf(g, Algorithm::VcrHash, 8);
        for alg in [Algorithm::Hdrf, Algorithm::PowerGraphGreedy, Algorithm::Dbh] {
            let v = rf(g, alg, 8);
            assert!(v < random, "{name}/{alg:?}: {v:.2} !< VCR {random:.2}");
        }
    }
}

#[test]
fn every_greedy_edge_cut_beats_random_on_every_generator() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("rmat", rmat(RmatConfig { scale: 10, edge_factor: 8, ..RmatConfig::default() })),
        ("road", road_grid(RoadConfig { width: 30, height: 30, ..RoadConfig::default() })),
        (
            "snb",
            snb_social(SnbConfig {
                persons: 1500,
                communities: 15,
                avg_friends: 8.0,
                ..SnbConfig::default()
            }),
        ),
    ];
    for (name, g) in &graphs {
        let cfg = PartitionerConfig::new(8);
        let random = partition(g, Algorithm::EcrHash, &cfg, order());
        let random_ecr = sgp_partition::metrics::edge_cut_ratio(g, &random).unwrap();
        for alg in [Algorithm::Ldg, Algorithm::Fennel, Algorithm::Metis] {
            let p = partition(g, alg, &cfg, order());
            let ecr = sgp_partition::metrics::edge_cut_ratio(g, &p).unwrap();
            assert!(ecr < random_ecr, "{name}/{alg:?}: {ecr:.2} !< hash {random_ecr:.2}");
        }
    }
}

#[test]
fn hash_matches_its_closed_forms_on_every_generator() {
    for g in [
        rmat(RmatConfig { scale: 11, edge_factor: 8, ..RmatConfig::default() }),
        snb_social(SnbConfig { persons: 3000, communities: 30, ..SnbConfig::default() }),
    ] {
        for k in [4usize, 16] {
            let cfg = PartitionerConfig::new(k);
            let ec = partition(&g, Algorithm::EcrHash, &cfg, order());
            let measured = sgp_partition::metrics::edge_cut_ratio(&g, &ec).unwrap();
            assert!((measured - expected_hash_edge_cut(k)).abs() < 0.05, "k={k}: ECR {measured}");
            let vc = partition(&g, Algorithm::VcrHash, &cfg, order());
            let rf_measured = replication_factor(&g, &vc);
            let rf_expected = expected_rf_random_vertex_cut(&g, k);
            assert!(
                (rf_measured - rf_expected).abs() / rf_expected < 0.06,
                "k={k}: RF {rf_measured} vs {rf_expected}"
            );
        }
    }
}

#[test]
fn restreaming_never_hurts_quality() {
    let g = snb_social(SnbConfig {
        persons: 2000,
        communities: 20,
        avg_friends: 10.0,
        ..SnbConfig::default()
    });
    let cfg = PartitionerConfig::new(8);
    for (single, multi) in
        [(Algorithm::Ldg, Algorithm::RestreamLdg), (Algorithm::Fennel, Algorithm::RestreamFennel)]
    {
        let e1 = sgp_partition::metrics::edge_cut_ratio(&g, &partition(&g, single, &cfg, order()))
            .unwrap();
        let e2 = sgp_partition::metrics::edge_cut_ratio(&g, &partition(&g, multi, &cfg, order()))
            .unwrap();
        assert!(e2 <= e1 + 0.02, "{multi:?} {e2:.3} regressed vs {single:?} {e1:.3}");
    }
}

#[test]
fn all_algorithms_keep_edge_balance_within_reason() {
    // Quality reports across the offline suite: the paper's §5.1.4 note
    // that all SGP algorithms achieve good (size) balance.
    let g = rmat(RmatConfig { scale: 11, edge_factor: 8, ..RmatConfig::default() });
    let cfg = PartitionerConfig::new(8);
    for &alg in Algorithm::offline_suite() {
        let p = partition(&g, alg, &cfg, order());
        let q = QualityReport::measure(&g, &p);
        // Hash/greedy vertex-cut: tight. Edge-cut converted placements
        // inherit hub skew, so allow the documented looser bound.
        let bound = match alg.info().model {
            sgp_partition::CutModel::VertexCut => 1.5,
            _ => 6.0,
        };
        assert!(
            q.edge_imbalance < bound,
            "{alg:?}: edge imbalance {:.2} over bound {bound}",
            q.edge_imbalance
        );
        if let Some(vi) = q.vertex_imbalance {
            assert!(vi < 1.6, "{alg:?}: vertex imbalance {vi:.2}");
        }
    }
}

#[test]
fn metis_quality_is_stable_across_ks() {
    let g = road_grid(RoadConfig { width: 30, height: 30, ..RoadConfig::default() });
    let mut last = 0.0;
    for k in [2usize, 4, 8, 16] {
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, Algorithm::Metis, &cfg, order());
        let ecr = sgp_partition::metrics::edge_cut_ratio(&g, &p).unwrap();
        assert!(ecr >= last - 0.02, "k={k}: MTS cut should grow with k ({last:.3} -> {ecr:.3})");
        assert!(ecr < 0.25, "k={k}: lattice cut {ecr:.3} too large");
        last = ecr;
    }
}

#[test]
fn grid_bound_holds_for_many_ks() {
    let g = rmat(RmatConfig { scale: 10, edge_factor: 10, ..RmatConfig::default() });
    for k in [4usize, 6, 9, 12, 16, 25] {
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, Algorithm::Grid, &cfg, order());
        let sets = p.replica_sets(&g);
        let bound = 2.0 * (k as f64).sqrt() + 1.0; // generous for non-square k
        for set in &sets {
            assert!(
                set.len() as f64 <= bound,
                "k={k}: replica set {} over bound {bound}",
                set.len()
            );
        }
        assert!(load_imbalance(&p.edges_per_partition()) < 1.6, "k={k}");
    }
}
