#![cfg(loom)]
//! Loom model of the merge barrier in the threaded execution backend
//! (`src/exec.rs`): L workers each publish a decision log for the
//! round, the coordinator joins them at the barrier and replays the
//! logs in seeded rotation order (`loaders::merge_start`). Loom
//! exhaustively explores thread interleavings and proves the merged
//! sequence is a pure function of the logs — worker *timing* can never
//! reorder decisions, which is exactly the bit-identity contract
//! `partition_threaded` makes against the modelled loader path.
//!
//! Not built by default: `loom` is a CI-only dev-dependency. The loom
//! workflow job runs `cargo add loom --dev -p sgp-partition` on the
//! runner and then tests with `RUSTFLAGS="--cfg loom"`; in a normal
//! build this whole file is compiled out by the `cfg(loom)` gate.

use loom::sync::{Arc, Mutex};
use loom::thread;

/// Replays per-worker logs in rotation order starting at `start`,
/// mirroring the replay loop at the barrier in `exec.rs`/`loaders.rs`
/// (`start` stands in for `merge_start(seed, round, l)`).
fn merge(logs: &[Vec<u32>], start: usize) -> Vec<u32> {
    let l = logs.len();
    let mut out = Vec::new();
    for i in 0..l {
        out.extend_from_slice(&logs[(start + i) % l]);
    }
    out
}

/// Every interleaving of the workers publishing their round logs must
/// produce the same merged decision sequence: the barrier (join) plus
/// the fixed rotation make the merge scheduling-independent.
#[test]
fn merge_barrier_is_interleaving_invariant() {
    for start in [0usize, 1, 2] {
        loom::model(move || {
            const L: usize = 3;
            let slots: Arc<Vec<Mutex<Option<Vec<u32>>>>> =
                Arc::new((0..L).map(|_| Mutex::new(None)).collect());
            let handles: Vec<_> = (0..L)
                .map(|w| {
                    let slots = Arc::clone(&slots);
                    thread::spawn(move || {
                        // A worker's log depends only on its stride of
                        // the stream (modelled by the worker id), never
                        // on when the scheduler runs it.
                        let log: Vec<u32> = (0..2).map(|i| (w * 10 + i) as u32).collect();
                        *slots[w].lock().unwrap() = Some(log);
                    })
                })
                .collect();
            // The barrier: no log is consumed before every worker has
            // published.
            for h in handles {
                h.join().unwrap();
            }
            let logs: Vec<Vec<u32>> = slots
                .iter()
                .map(|s| s.lock().unwrap().take().expect("worker published its log"))
                .collect();
            let pure: Vec<Vec<u32>> =
                (0..L).map(|w| (0..2).map(|i| (w * 10 + i) as u32).collect()).collect();
            assert_eq!(merge(&logs, start), merge(&pure, start));
        });
    }
}
