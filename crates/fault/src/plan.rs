//! The fault plan: a seeded, schema-versioned description of every
//! fault a simulated run will experience.

use crate::rng::{splitmix64, unit_f64, PlanRng};
use serde::{Deserialize, Serialize};

/// Schema version of the serialized [`FaultPlan`]. Bump on any change
/// to the event vocabulary or the draw-stream constants — a plan only
/// reproduces a run bit-for-bit under the schema it was written for.
/// v2 added the [`FaultEvent::Membership`] vocabulary; v1 plans are
/// rejected with [`PlanError::SchemaMismatch`].
pub const FAULT_PLAN_SCHEMA_VERSION: u32 = 2;

/// Draw-stream separators: each decision family hashes from a disjoint
/// stream so message-loss draws never correlate with failover draws.
const STREAM_MESSAGE_LOSS: u64 = 0x4D45_5353_4C4F_5353; // "MESSLOSS"
const STREAM_DRAW_BASE: u64 = 0x4652_4545_4452_5721; // generic keyed draws

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Machine `machine` crashes at simulated time `at_ns`, losing its
    /// queue and in-flight work. With `recovery_ns = Some(d)` it comes
    /// back (empty-queued) at `at_ns + d`; `None` is permanent.
    Crash {
        /// Crashed machine index.
        machine: u32,
        /// Simulated crash time, nanoseconds.
        at_ns: u64,
        /// Downtime before the machine rejoins; `None` = permanent.
        recovery_ns: Option<u64>,
    },
    /// Machine `machine` serves requests `slowdown`× slower during
    /// `[from_ns, until_ns)`.
    Straggler {
        /// Slowed machine index.
        machine: u32,
        /// Window start, nanoseconds.
        from_ns: u64,
        /// Window end (exclusive), nanoseconds.
        until_ns: u64,
        /// Service-time multiplier, ≥ 1.
        slowdown: f64,
    },
    /// A cluster-membership change (schema v2): the cluster's working
    /// set of machines grows, shrinks, or loses-then-regains a member.
    /// Unlike [`FaultEvent::Crash`], a membership event obliges the
    /// system to *rebalance* — the simulators charge a bounded-movement
    /// migration and run degraded until it completes.
    Membership {
        /// Affected machine index.
        machine: u32,
        /// Simulated time of the membership change, nanoseconds.
        at_ns: u64,
        /// What kind of change this is.
        kind: MembershipKind,
        /// Downtime before a [`MembershipKind::CrashRejoin`] machine
        /// rejoins; must be `Some(> 0)` for that kind and `None` for
        /// the others.
        rejoin_ns: Option<u64>,
    },
}

/// The three membership-change shapes of [`FaultEvent::Membership`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipKind {
    /// The machine joins the cluster at `at_ns` (it is *down* — not yet
    /// a member — before then).
    ScaleOut,
    /// The machine leaves the cluster permanently at `at_ns`.
    ScaleIn,
    /// The machine crashes at `at_ns` and rejoins, state intact but
    /// stale, after `rejoin_ns` of downtime.
    CrashRejoin,
}

impl FaultEvent {
    fn machine(&self) -> u32 {
        match *self {
            FaultEvent::Crash { machine, .. }
            | FaultEvent::Straggler { machine, .. }
            | FaultEvent::Membership { machine, .. } => machine,
        }
    }

    fn start_ns(&self) -> u64 {
        match *self {
            FaultEvent::Crash { at_ns, .. } | FaultEvent::Membership { at_ns, .. } => at_ns,
            FaultEvent::Straggler { from_ns, .. } => from_ns,
        }
    }
}

/// A plan is invalid: the variant says why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan targets a machine index ≥ the declared cluster size.
    MachineOutOfRange {
        /// Offending machine index.
        machine: u32,
        /// Declared cluster size.
        machines: usize,
    },
    /// A straggler window is empty or its slowdown is < 1 / non-finite.
    BadStragglerWindow,
    /// `message_loss` is outside `[0, 1]` or non-finite.
    BadLossProbability,
    /// The plan was written under a different schema version.
    SchemaMismatch {
        /// Version found in the plan.
        found: u32,
    },
    /// The plan declares a zero-machine cluster.
    NoMachines,
    /// A membership event is malformed: a crash-then-rejoin without a
    /// positive downtime, or a scale-out/scale-in carrying one.
    BadMembershipEvent,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MachineOutOfRange { machine, machines } => {
                write!(f, "fault targets machine {machine} but the plan covers {machines}")
            }
            PlanError::BadStragglerWindow => {
                write!(f, "straggler window must be non-empty with finite slowdown >= 1")
            }
            PlanError::BadLossProbability => {
                write!(f, "message-loss probability must be a finite value in [0, 1]")
            }
            PlanError::SchemaMismatch { found } => {
                write!(f, "plan schema v{found} != supported v{FAULT_PLAN_SCHEMA_VERSION}")
            }
            PlanError::NoMachines => write!(f, "plan covers zero machines"),
            PlanError::BadMembershipEvent => {
                write!(
                    f,
                    "membership event malformed: crash-then-rejoin needs a positive downtime, \
                     scale-out/scale-in must not carry one"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A seeded, schema-versioned fault plan for a `machines`-node cluster.
///
/// Construct with [`FaultPlan::healthy`] and the `with_*` builders, or
/// generate a randomized plan from a seed with [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Schema version this plan was written under.
    pub schema_version: u32,
    /// Seed from which every runtime draw (message loss, failover) and
    /// generated event flows.
    pub seed: u64,
    /// Cluster size the plan covers.
    pub machines: usize,
    /// Drop probability per cross-machine message, in `[0, 1]`.
    pub message_loss: f64,
    /// Scheduled faults, sorted by (start time, machine).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults (the baseline both simulators reduce to).
    pub fn healthy(machines: usize, seed: u64) -> Self {
        FaultPlan {
            schema_version: FAULT_PLAN_SCHEMA_VERSION,
            seed,
            machines,
            message_loss: 0.0,
            events: Vec::new(),
        }
    }

    /// Adds a permanent crash of `machine` at `at_ns`.
    pub fn with_crash(mut self, machine: u32, at_ns: u64) -> Self {
        self.events.push(FaultEvent::Crash { machine, at_ns, recovery_ns: None });
        self.sort_events();
        self
    }

    /// Adds a crash of `machine` at `at_ns` that recovers after
    /// `recovery_ns` of downtime.
    pub fn with_recovering_crash(mut self, machine: u32, at_ns: u64, recovery_ns: u64) -> Self {
        self.events.push(FaultEvent::Crash { machine, at_ns, recovery_ns: Some(recovery_ns) });
        self.sort_events();
        self
    }

    /// Adds a straggler window on `machine`.
    pub fn with_straggler(
        mut self,
        machine: u32,
        from_ns: u64,
        until_ns: u64,
        slowdown: f64,
    ) -> Self {
        self.events.push(FaultEvent::Straggler { machine, from_ns, until_ns, slowdown });
        self.sort_events();
        self
    }

    /// Sets the per-message drop probability for cross-machine traffic.
    pub fn with_message_loss(mut self, probability: f64) -> Self {
        self.message_loss = probability;
        self
    }

    /// Adds a scale-out: `machine` joins the cluster at `at_ns` (before
    /// then it is not a member and serves nothing).
    pub fn with_scale_out(mut self, machine: u32, at_ns: u64) -> Self {
        self.events.push(FaultEvent::Membership {
            machine,
            at_ns,
            kind: MembershipKind::ScaleOut,
            rejoin_ns: None,
        });
        self.sort_events();
        self
    }

    /// Adds a scale-in: `machine` leaves the cluster permanently at
    /// `at_ns`, and its data must migrate to the survivors.
    pub fn with_scale_in(mut self, machine: u32, at_ns: u64) -> Self {
        self.events.push(FaultEvent::Membership {
            machine,
            at_ns,
            kind: MembershipKind::ScaleIn,
            rejoin_ns: None,
        });
        self.sort_events();
        self
    }

    /// Adds a crash-then-rejoin: `machine` crashes at `at_ns` and
    /// rejoins, stale, after `rejoin_ns > 0` of downtime.
    pub fn with_crash_rejoin(mut self, machine: u32, at_ns: u64, rejoin_ns: u64) -> Self {
        self.events.push(FaultEvent::Membership {
            machine,
            at_ns,
            kind: MembershipKind::CrashRejoin,
            rejoin_ns: Some(rejoin_ns),
        });
        self.sort_events();
        self
    }

    /// The membership events of the plan, in schedule order — the
    /// rebalance triggers an elastic run must answer.
    pub fn membership_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| matches!(e, FaultEvent::Membership { .. }))
    }

    fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.start_ns(), e.machine()));
    }

    /// Generates a randomized plan: `cfg.crashes` distinct victims with
    /// seeded crash times, `cfg.stragglers` distinct slowed machines,
    /// and `cfg.message_loss`. Deterministic in `(cfg, machines, seed)`.
    pub fn generate(cfg: &FaultPlanConfig, machines: usize, seed: u64) -> Self {
        let mut rng = PlanRng::new(seed);
        let mut plan = FaultPlan::healthy(machines, seed).with_message_loss(cfg.message_loss);
        let mut victims: Vec<u32> = Vec::new();
        let wanted = cfg.crashes.min(machines.saturating_sub(1));
        while victims.len() < wanted {
            let m = rng.range_u64(0, machines as u64) as u32;
            if !victims.contains(&m) {
                victims.push(m);
            }
        }
        for &m in &victims {
            let at = rng.range_u64(cfg.crash_window_ns.0, cfg.crash_window_ns.1);
            let recovery = if rng.unit() < cfg.permanent_fraction {
                None
            } else {
                Some(rng.range_u64(cfg.recovery_window_ns.0, cfg.recovery_window_ns.1))
            };
            plan.events.push(FaultEvent::Crash { machine: m, at_ns: at, recovery_ns: recovery });
        }
        let mut slowed: Vec<u32> = Vec::new();
        let wanted = cfg.stragglers.min(machines.saturating_sub(victims.len()));
        while slowed.len() < wanted {
            let m = rng.range_u64(0, machines as u64) as u32;
            if !victims.contains(&m) && !slowed.contains(&m) {
                slowed.push(m);
            }
        }
        for &m in &slowed {
            let from = rng.range_u64(cfg.crash_window_ns.0, cfg.crash_window_ns.1);
            let span = cfg.straggler_duration_ns.max(1);
            let slowdown = cfg.slowdown_range.0
                + rng.unit() * (cfg.slowdown_range.1 - cfg.slowdown_range.0).max(0.0);
            plan.events.push(FaultEvent::Straggler {
                machine: m,
                from_ns: from,
                until_ns: from.saturating_add(span),
                slowdown: slowdown.max(1.0),
            });
        }
        // Membership draws come last so a `memberships = 0` config
        // reproduces the exact v1 draw stream for crashes/stragglers.
        let mut members: Vec<u32> = Vec::new();
        let wanted = cfg.memberships.min(machines.saturating_sub(victims.len() + 1));
        while members.len() < wanted {
            let m = rng.range_u64(0, machines as u64) as u32;
            if !victims.contains(&m) && !members.contains(&m) {
                members.push(m);
            }
        }
        for &m in &members {
            let at = rng.range_u64(cfg.crash_window_ns.0, cfg.crash_window_ns.1);
            let (kind, rejoin) = match rng.range_u64(0, 3) {
                0 => (MembershipKind::ScaleOut, None),
                1 => (MembershipKind::ScaleIn, None),
                _ => (
                    MembershipKind::CrashRejoin,
                    Some(rng.range_u64(cfg.recovery_window_ns.0, cfg.recovery_window_ns.1).max(1)),
                ),
            };
            plan.events.push(FaultEvent::Membership {
                machine: m,
                at_ns: at,
                kind,
                rejoin_ns: rejoin,
            });
        }
        plan.sort_events();
        plan
    }

    /// Checks internal consistency; both simulators call this before
    /// running.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.schema_version != FAULT_PLAN_SCHEMA_VERSION {
            return Err(PlanError::SchemaMismatch { found: self.schema_version });
        }
        if self.machines == 0 {
            return Err(PlanError::NoMachines);
        }
        if !self.message_loss.is_finite() || !(0.0..=1.0).contains(&self.message_loss) {
            return Err(PlanError::BadLossProbability);
        }
        for e in &self.events {
            if e.machine() as usize >= self.machines {
                return Err(PlanError::MachineOutOfRange {
                    machine: e.machine(),
                    machines: self.machines,
                });
            }
            if let FaultEvent::Straggler { from_ns, until_ns, slowdown, .. } = *e {
                if until_ns <= from_ns || !slowdown.is_finite() || slowdown < 1.0 {
                    return Err(PlanError::BadStragglerWindow);
                }
            }
            if let FaultEvent::Membership { kind, rejoin_ns, .. } = *e {
                let ok = match kind {
                    MembershipKind::CrashRejoin => matches!(rejoin_ns, Some(d) if d > 0),
                    MembershipKind::ScaleOut | MembershipKind::ScaleIn => rejoin_ns.is_none(),
                };
                if !ok {
                    return Err(PlanError::BadMembershipEvent);
                }
            }
        }
        Ok(())
    }

    /// Is `machine` up (a live cluster member) at simulated time `t_ns`?
    pub fn is_up(&self, machine: u32, t_ns: u64) -> bool {
        for e in &self.events {
            match *e {
                FaultEvent::Crash { machine: m, at_ns, recovery_ns } if m == machine => {
                    if t_ns >= at_ns {
                        match recovery_ns {
                            None => return false,
                            Some(d) => {
                                if t_ns < at_ns.saturating_add(d) {
                                    return false;
                                }
                            }
                        }
                    }
                }
                FaultEvent::Membership { machine: m, at_ns, kind, rejoin_ns } if m == machine => {
                    match kind {
                        // Not a member until it joins.
                        MembershipKind::ScaleOut => {
                            if t_ns < at_ns {
                                return false;
                            }
                        }
                        // Gone for good once it leaves.
                        MembershipKind::ScaleIn => {
                            if t_ns >= at_ns {
                                return false;
                            }
                        }
                        MembershipKind::CrashRejoin => {
                            let d = rejoin_ns.unwrap_or(0);
                            if t_ns >= at_ns && t_ns < at_ns.saturating_add(d) {
                                return false;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// Service-time multiplier of `machine` at `t_ns` (product of all
    /// active straggler windows; 1.0 when healthy).
    pub fn slowdown(&self, machine: u32, t_ns: u64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultEvent::Straggler { machine: m, from_ns, until_ns, slowdown } = *e {
                if m == machine && (from_ns..until_ns).contains(&t_ns) {
                    factor *= slowdown;
                }
            }
        }
        factor
    }

    /// True when every machine is permanently dead from t = 0 — the
    /// degenerate plan the DES rejects with a typed error.
    pub fn all_machines_dead_from_start(&self) -> bool {
        self.machines > 0 && (0..self.machines as u32).all(|m| !self.is_up(m, 0) && {
            // Dead at t=0 *and* never recovering.
            self.events.iter().any(|e| {
                matches!(*e, FaultEvent::Crash { machine, at_ns: 0, recovery_ns: None } if machine == m)
                    || matches!(*e, FaultEvent::Membership { machine, at_ns: 0, kind: MembershipKind::ScaleIn, .. } if machine == m)
            })
        })
    }

    /// Seeded per-message drop decision: message `msg_id` (a monotonic
    /// cross-machine send counter) is dropped with probability
    /// [`FaultPlan::message_loss`]. Pure in `(seed, msg_id)`.
    pub fn drop_message(&self, msg_id: u64) -> bool {
        if self.message_loss <= 0.0 {
            return false;
        }
        unit_f64(splitmix64(self.seed ^ STREAM_MESSAGE_LOSS ^ splitmix64(msg_id)))
            < self.message_loss
    }

    /// A generic keyed uniform draw in `[0, 1)` — used by the DES for
    /// mirror-failover decisions. Pure in `(seed, key)`.
    pub fn unit_draw(&self, key: u64) -> f64 {
        unit_f64(splitmix64(self.seed ^ STREAM_DRAW_BASE ^ splitmix64(key)))
    }
}

/// Parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Number of distinct crash victims (capped at `machines - 1` so a
    /// generated plan never kills the whole cluster).
    pub crashes: usize,
    /// Probability a generated crash is permanent (vs recovering).
    pub permanent_fraction: f64,
    /// Crash/straggler start times are drawn from this window, ns.
    pub crash_window_ns: (u64, u64),
    /// Recovery downtimes are drawn from this window, ns.
    pub recovery_window_ns: (u64, u64),
    /// Number of distinct straggler machines (disjoint from victims).
    pub stragglers: usize,
    /// Straggler slowdown factor range (values < 1 are clamped to 1).
    pub slowdown_range: (f64, f64),
    /// Length of each straggler window, ns.
    pub straggler_duration_ns: u64,
    /// Per-message drop probability for cross-machine traffic.
    pub message_loss: f64,
    /// Number of membership events to draw (kinds drawn uniformly;
    /// machines disjoint from crash victims so a generated plan never
    /// strands the cluster). `0` reproduces the v1 draw stream exactly.
    pub memberships: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            crashes: 1,
            permanent_fraction: 0.5,
            crash_window_ns: (1_000_000, 10_000_000),
            recovery_window_ns: (5_000_000, 20_000_000),
            stragglers: 1,
            slowdown_range: (1.5, 4.0),
            straggler_duration_ns: 50_000_000,
            message_loss: 0.005,
            memberships: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_validates_and_is_quiet() {
        let p = FaultPlan::healthy(4, 1);
        assert!(p.validate().is_ok());
        assert!(p.is_up(0, 0) && p.is_up(3, u64::MAX));
        assert_eq!(p.slowdown(0, 0), 1.0);
        assert!(!p.drop_message(0));
        assert!(!p.all_machines_dead_from_start());
    }

    #[test]
    fn crash_windows_respect_recovery() {
        let p = FaultPlan::healthy(2, 1).with_recovering_crash(1, 100, 50);
        assert!(p.is_up(1, 99));
        assert!(!p.is_up(1, 100));
        assert!(!p.is_up(1, 149));
        assert!(p.is_up(1, 150));
        let p = FaultPlan::healthy(2, 1).with_crash(0, 10);
        assert!(!p.is_up(0, u64::MAX));
    }

    #[test]
    fn straggler_windows_multiply() {
        let p =
            FaultPlan::healthy(2, 1).with_straggler(0, 0, 100, 2.0).with_straggler(0, 50, 150, 3.0);
        assert_eq!(p.slowdown(0, 10), 2.0);
        assert_eq!(p.slowdown(0, 60), 6.0);
        assert_eq!(p.slowdown(0, 120), 3.0);
        assert_eq!(p.slowdown(0, 150), 1.0);
        assert_eq!(p.slowdown(1, 60), 1.0);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert_eq!(FaultPlan::healthy(0, 1).validate(), Err(PlanError::NoMachines));
        let out = FaultPlan::healthy(2, 1).with_crash(2, 0);
        assert!(matches!(out.validate(), Err(PlanError::MachineOutOfRange { .. })));
        let loss = FaultPlan::healthy(2, 1).with_message_loss(1.5);
        assert_eq!(loss.validate(), Err(PlanError::BadLossProbability));
        let bad = FaultPlan::healthy(2, 1).with_straggler(0, 10, 10, 2.0);
        assert_eq!(bad.validate(), Err(PlanError::BadStragglerWindow));
        let slow = FaultPlan::healthy(2, 1).with_straggler(0, 0, 10, 0.5);
        assert_eq!(slow.validate(), Err(PlanError::BadStragglerWindow));
        let mut old = FaultPlan::healthy(2, 1);
        old.schema_version = 0;
        assert_eq!(old.validate(), Err(PlanError::SchemaMismatch { found: 0 }));
        // v1 plans (pre-membership vocabulary) are rejected, not coerced.
        let mut v1 = FaultPlan::healthy(2, 1);
        v1.schema_version = 1;
        assert_eq!(v1.validate(), Err(PlanError::SchemaMismatch { found: 1 }));
        let no_rejoin = FaultPlan::healthy(2, 1).with_crash_rejoin(0, 10, 0);
        assert_eq!(no_rejoin.validate(), Err(PlanError::BadMembershipEvent));
        let mut stray = FaultPlan::healthy(2, 1).with_scale_in(0, 10);
        if let Some(FaultEvent::Membership { rejoin_ns, .. }) = stray.events.first_mut() {
            *rejoin_ns = Some(5);
        }
        assert_eq!(stray.validate(), Err(PlanError::BadMembershipEvent));
    }

    #[test]
    fn membership_events_shape_liveness() {
        let p = FaultPlan::healthy(4, 1)
            .with_scale_out(3, 100)
            .with_scale_in(2, 200)
            .with_crash_rejoin(1, 50, 25);
        assert!(p.validate().is_ok());
        // Scale-out: down before the join, up after.
        assert!(!p.is_up(3, 0) && !p.is_up(3, 99) && p.is_up(3, 100));
        // Scale-in: up before the departure, down forever after.
        assert!(p.is_up(2, 199) && !p.is_up(2, 200) && !p.is_up(2, u64::MAX));
        // Crash-rejoin: a bounded outage.
        assert!(p.is_up(1, 49) && !p.is_up(1, 50) && !p.is_up(1, 74) && p.is_up(1, 75));
        // Untouched machine stays up throughout.
        assert!(p.is_up(0, 0) && p.is_up(0, u64::MAX));
        assert_eq!(p.membership_events().count(), 3);
    }

    #[test]
    fn generated_membership_plans_are_deterministic_and_valid() {
        let cfg = FaultPlanConfig { memberships: 2, ..Default::default() };
        let a = FaultPlan::generate(&cfg, 8, 7);
        let b = FaultPlan::generate(&cfg, 8, 7);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        assert_eq!(a.membership_events().count(), 2);
        // memberships = 0 reproduces the v1 draw stream: the non-
        // membership prefix of the plan is unchanged.
        let v1_cfg = FaultPlanConfig { memberships: 0, ..Default::default() };
        let base = FaultPlan::generate(&v1_cfg, 8, 7);
        let non_membership: Vec<_> = a
            .events
            .iter()
            .filter(|e| !matches!(e, FaultEvent::Membership { .. }))
            .cloned()
            .collect();
        assert_eq!(non_membership, base.events);
    }

    #[test]
    fn all_dead_detection_requires_permanent_t0_crashes() {
        let dead = FaultPlan::healthy(2, 1).with_crash(0, 0).with_crash(1, 0);
        assert!(dead.all_machines_dead_from_start());
        let recovers = FaultPlan::healthy(2, 1).with_crash(0, 0).with_recovering_crash(1, 0, 10);
        assert!(!recovers.all_machines_dead_from_start());
        let partial = FaultPlan::healthy(2, 1).with_crash(0, 0);
        assert!(!partial.all_machines_dead_from_start());
    }

    #[test]
    fn message_drops_are_pure_and_roughly_calibrated() {
        let p = FaultPlan::healthy(2, 9).with_message_loss(0.25);
        let drops: usize = (0..10_000).filter(|&i| p.drop_message(i)).count();
        assert!((1_500..3_500).contains(&drops), "{drops} drops at p=0.25");
        for i in 0..100 {
            assert_eq!(p.drop_message(i), p.drop_message(i));
        }
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(&cfg, 8, 42);
        let b = FaultPlan::generate(&cfg, 8, 42);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        assert!(!a.events.is_empty());
        let c = FaultPlan::generate(&cfg, 8, 43);
        assert_ne!(a.events, c.events, "different seeds should schedule different faults");
    }

    #[test]
    fn generate_never_kills_the_whole_cluster() {
        let cfg = FaultPlanConfig { crashes: 99, ..Default::default() };
        for seed in 0..20 {
            let p = FaultPlan::generate(&cfg, 4, seed);
            let crashes = p.events.iter().filter(|e| matches!(e, FaultEvent::Crash { .. })).count();
            assert!(crashes <= 3);
            assert!(!p.all_machines_dead_from_start());
        }
    }
}
