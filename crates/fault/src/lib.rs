//! # sgp-fault
//!
//! Deterministic fault-injection plans shared by both execution
//! substrates of the reproduction (the `sgp-db` discrete-event cluster
//! simulator and the `sgp-engine` GAS superstep simulator).
//!
//! The paper measures both systems on a healthy cluster; this crate
//! supplies the failure model that turns the reproduction into a
//! robustness testbed (DESIGN.md §7). A [`FaultPlan`] is a seeded,
//! schema-versioned description of three fault classes:
//!
//! * **machine crash** — permanent, or recovering after a delay;
//! * **straggler** — a per-machine service-rate multiplier over a
//!   simulated-time window;
//! * **message loss** — a per-message drop probability applied to
//!   cross-machine traffic, decided by a seeded hash of the message
//!   sequence number;
//! * **membership change** (schema v2) — scale-out, scale-in, and
//!   crash-then-rejoin events that change the live cluster and oblige a
//!   bounded-movement rebalance (DESIGN.md §11).
//!
//! Every random decision flows from [`FaultPlan::seed`] through a
//! counter-keyed [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! mix, so a run under a fixed plan is bit-for-bit reproducible — no
//! `thread_rng`, no wall-clock (enforced by `sgp-xtask lint`'s
//! `no-wallclock-in-sim` rule, which scopes this crate).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod plan;
pub mod retry;
mod rng;

pub use plan::{
    FaultEvent, FaultPlan, FaultPlanConfig, MembershipKind, PlanError, FAULT_PLAN_SCHEMA_VERSION,
};
pub use retry::RetryPolicy;
