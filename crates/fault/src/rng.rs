//! Counter-keyed deterministic randomness for fault plans.
//!
//! The simulators need per-message and per-draw decisions that are (a)
//! fully determined by the plan seed and (b) independent of the order
//! in which other draws happen. A counter-keyed splitmix64 mix gives
//! both: `mix(seed ^ stream ^ key)` depends only on its inputs, never
//! on hidden generator state.

/// SplitMix64 finalizer: a high-quality 64-bit mix.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit word to a uniform f64 in `[0, 1)` (53 mantissa bits).
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A tiny sequential generator for plan *generation* (picking crash
/// victims and times). Decision-time draws use the keyed form instead.
pub(crate) struct PlanRng {
    state: u64,
}

impl PlanRng {
    pub(crate) fn new(seed: u64) -> Self {
        PlanRng { state: splitmix64(seed ^ 0x5067_5BB0_7AFA_11D4) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub(crate) fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    pub(crate) fn unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_pure() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn unit_is_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn plan_rng_is_deterministic() {
        let mut a = PlanRng::new(7);
        let mut b = PlanRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_handles_degenerate_bounds() {
        let mut r = PlanRng::new(1);
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_u64(9, 3), 9);
        let v = r.range_u64(10, 20);
        assert!((10..20).contains(&v));
    }
}
