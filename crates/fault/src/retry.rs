//! Retry/timeout/backoff policy for the DES fault path.

use serde::{Deserialize, Serialize};

/// How the DES coordinator reacts to a lost or unanswered sub-request:
/// declare it failed after [`RetryPolicy::timeout_ns`], then re-send
/// after an exponentially growing, capped backoff, up to
/// [`RetryPolicy::max_attempts`] total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total send attempts per sub-request (first try included); the
    /// query fails once a sub-request exhausts them.
    pub max_attempts: u32,
    /// Coordinator-side detection delay before a sub-request with no
    /// reply is declared lost, nanoseconds.
    pub timeout_ns: u64,
    /// Backoff before the first re-send, nanoseconds; doubles per
    /// further attempt.
    pub base_backoff_ns: u64,
    /// Upper bound on any single backoff, nanoseconds.
    pub backoff_cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            timeout_ns: 2_000_000,     // 2 ms — a few service times
            base_backoff_ns: 500_000,  // 0.5 ms
            backoff_cap_ns: 8_000_000, // 8 ms
        }
    }
}

impl RetryPolicy {
    /// Backoff before re-sending after `attempt` failed attempts
    /// (1-based): `base · 2^(attempt-1)`, capped. Monotone
    /// non-decreasing in `attempt` and never above the cap.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        self.base_backoff_ns.saturating_mul(1u64 << exp).min(self.backoff_cap_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_ns(1), 500_000);
        assert_eq!(r.backoff_ns(2), 1_000_000);
        assert_eq!(r.backoff_ns(3), 2_000_000);
        assert_eq!(r.backoff_ns(5), 8_000_000);
        assert_eq!(r.backoff_ns(50), 8_000_000);
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let r = RetryPolicy { base_backoff_ns: 3, backoff_cap_ns: 1_000, ..Default::default() };
        let mut prev = 0;
        for a in 1..64 {
            let b = r.backoff_ns(a);
            assert!(b >= prev, "backoff must not shrink: {b} after {prev}");
            assert!(b <= r.backoff_cap_ns);
            prev = b;
        }
    }

    #[test]
    fn attempt_zero_is_treated_as_first() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_ns(0), r.backoff_ns(1));
    }
}
