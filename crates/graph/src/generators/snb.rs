//! LDBC-SNB-like social network generator.
//!
//! The paper's online-query experiments run on the LDBC SNB SF-1000
//! friendship graph ("users and knows relationships", Table 3: heavy
//! tailed, avg degree 124, max 3682). The LDBC data generator produces a
//! graph with (a) strong community structure (people know people in the
//! same university/city/interest cluster) and (b) a heavy-tailed but
//! *bounded* degree distribution — unlike Twitter there are no 10⁶-degree
//! hubs. Both properties matter: community structure is what LDG/FENNEL
//! and METIS exploit to cut few edges (Table 4), and the bounded tail
//! plus workload skew is what drives the paper's hotspot findings.
//!
//! This generator reproduces both: vertices are assigned to Zipf-sized
//! communities; each vertex draws a (capped) Zipf degree and connects
//! mostly inside its community, with a configurable fraction of
//! long-range friendships. Friendships are symmetric (both directions
//! materialized), like `knows`.

use crate::csr::Graph;
use crate::sampling::{seeded_rng, Zipf};
use crate::types::VertexId;
use crate::GraphBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the [`snb_social`] generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SnbConfig {
    /// Number of persons.
    pub persons: usize,
    /// Number of communities (universities/cities).
    pub communities: usize,
    /// Target average number of friends per person.
    pub avg_friends: f64,
    /// Zipf exponent of the friend-count distribution.
    pub degree_exponent: f64,
    /// Maximum friends for any person (SNB degrees are capped, unlike
    /// Twitter followers).
    pub max_friends: usize,
    /// Probability that a friendship leaves the community.
    pub inter_community_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnbConfig {
    fn default() -> Self {
        SnbConfig {
            persons: 20_000,
            communities: 200,
            avg_friends: 20.0,
            degree_exponent: 0.9,
            max_friends: 500,
            inter_community_rate: 0.15,
            seed: 0x50C1A1,
        }
    }
}

/// Generates the SNB-like friendship graph. Every friendship appears as
/// two directed edges (u→v and v→u).
pub fn snb_social(cfg: SnbConfig) -> Graph {
    assert!(cfg.persons >= 2, "need at least two persons");
    assert!(cfg.communities >= 1, "need at least one community");
    assert!((0.0..=1.0).contains(&cfg.inter_community_rate));
    let n = cfg.persons;
    let mut rng = seeded_rng(cfg.seed);

    // Community sizes ~ Zipf(0.8) so a few big cities exist.
    let comm_zipf = Zipf::new(cfg.communities, 0.8);
    let mut community_of: Vec<u32> = (0..n).map(|_| comm_zipf.sample(&mut rng) as u32).collect();
    // Group members per community for fast intra-community sampling.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); cfg.communities];
    for (v, &c) in community_of.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    // Communities with a single member cannot host intra edges; fold them
    // into community 0 so sampling always succeeds.
    for c in 0..cfg.communities {
        if members[c].len() == 1 && c != 0 {
            let v = members[c][0];
            community_of[v as usize] = 0;
            members[0].push(v);
            members[c].clear();
        }
    }

    // Per-person friend budget ~ capped Zipf scaled to the mean.
    let deg_zipf = Zipf::new(n.min(100_000), cfg.degree_exponent);
    let raw: Vec<f64> = (0..n).map(|_| (deg_zipf.sample(&mut rng) + 1) as f64).collect();
    let raw_mean: f64 = raw.iter().sum::<f64>() / n as f64;
    let scale = cfg.avg_friends / raw_mean;
    let budgets: Vec<usize> =
        raw.iter().map(|r| ((r * scale).round() as usize).clamp(1, cfg.max_friends)).collect();

    let mut builder = GraphBuilder::with_capacity((cfg.avg_friends as usize + 1) * n);
    for v in 0..n as VertexId {
        let c = community_of[v as usize] as usize;
        let local = &members[c];
        for _ in 0..budgets[v as usize] {
            let w = if rng.gen::<f64>() < cfg.inter_community_rate || local.len() < 2 {
                rng.gen_range(0..n) as VertexId
            } else {
                local[rng.gen_range(0..local.len())]
            };
            if w != v {
                builder.push_edge(v, w);
                builder.push_edge(w, v);
            }
        }
    }
    builder.ensure_vertices(n).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SnbConfig {
        SnbConfig { persons: 2000, communities: 20, avg_friends: 10.0, ..SnbConfig::default() }
    }

    #[test]
    fn snb_is_symmetric() {
        let g = snb_social(small());
        for e in g.edges() {
            assert!(g.has_edge(e.dst, e.src), "missing reverse of {e}");
        }
    }

    #[test]
    fn snb_is_deterministic() {
        let a = snb_social(small());
        let b = snb_social(small());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn snb_degree_is_capped() {
        let cfg = SnbConfig { max_friends: 50, ..small() };
        let g = snb_social(cfg);
        // In-degree can exceed the per-person budget (popular people), but
        // not by orders of magnitude as in Twitter.
        assert!(g.max_degree() < 20 * 50, "max degree {}", g.max_degree());
    }

    #[test]
    fn snb_has_community_locality() {
        // With inter_community_rate = 0, a vertex's neighbours should sit
        // in few distinct communities; measure proxy: average neighbour
        // overlap via clustering-like count of shared neighbours. We use a
        // cheaper check: most edges connect vertices whose neighbourhoods
        // intersect.
        let g = snb_social(SnbConfig { inter_community_rate: 0.0, ..small() });
        let mut intersecting = 0usize;
        let mut total = 0usize;
        for e in g.edges().take(2000) {
            total += 1;
            let a = g.out_neighbors(e.src);
            let b = g.out_neighbors(e.dst);
            let mut i = 0;
            let mut j = 0;
            let mut shared = false;
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared = true;
                        break;
                    }
                }
            }
            if shared {
                intersecting += 1;
            }
        }
        assert!(
            intersecting as f64 > 0.5 * total as f64,
            "community graph should have triadic closure: {intersecting}/{total}"
        );
    }

    #[test]
    fn snb_average_degree_near_target() {
        let g = snb_social(small());
        // Each friendship adds 2 directed edges; dedup removes repeats, so
        // allow a wide band.
        let avg = g.avg_degree();
        assert!(avg > 5.0 && avg < 40.0, "avg degree {avg}");
    }
}
