//! Recursive-matrix (R-MAT) generator — the Twitter stand-in.
//!
//! R-MAT with the classic `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
//! parameterization produces the heavy-tailed degree distribution and
//! hub vertices characteristic of the Twitter follower graph (Table 3:
//! avg degree 35, max degree 2.9M). Scale is configurable so the
//! reproduction runs at laptop size.

use crate::csr::Graph;
use crate::sampling::seeded_rng;
use crate::GraphBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the [`rmat`] generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of vertices (n = 2^scale).
    pub scale: u32,
    /// Average out-degree; m = edge_factor * n edges are attempted.
    pub edge_factor: usize,
    /// Quadrant probabilities; must be positive and sum to ~1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // Graph500 parameters: strongly skewed, Twitter-like.
        RmatConfig { scale: 14, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, seed: 0x0781_77E4 }
    }
}

impl RmatConfig {
    /// The implied bottom-right quadrant probability `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Number of vertices `2^scale`.
    pub fn vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates an R-MAT graph.
///
/// Duplicate edges and self-loops produced by the recursive process are
/// dropped (the paper's datasets are simple graphs), so the final edge
/// count is slightly below `edge_factor * n`.
///
/// # Panics
/// Panics if the quadrant probabilities are not a valid distribution.
pub fn rmat(cfg: RmatConfig) -> Graph {
    let d = cfg.d();
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && d >= 0.0,
        "invalid R-MAT probabilities a={} b={} c={} d={}",
        cfg.a,
        cfg.b,
        cfg.c,
        d
    );
    let n = cfg.vertices();
    let m = cfg.edge_factor * n;
    let mut rng = seeded_rng(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(m);
    // Noise on the quadrant probabilities per level ("smoothing") avoids
    // the artificial staircase degree distribution of pure R-MAT.
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        for _ in 0..cfg.scale {
            let noise = 0.95 + 0.1 * rng.gen::<f64>();
            let (a, b, c) = (cfg.a * noise, cfg.b, cfg.c);
            let total = a + b + c + d;
            let r: f64 = rng.gen::<f64>() * total;
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        builder.push_edge(x0 as u32, y0 as u32);
    }
    builder.ensure_vertices(n).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RmatConfig {
        RmatConfig { scale: 10, edge_factor: 8, ..RmatConfig::default() }
    }

    #[test]
    fn rmat_vertex_count_is_power_of_two() {
        let g = rmat(small());
        assert_eq!(g.num_vertices(), 1024);
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(small());
        let b = rmat(small());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn rmat_seed_changes_graph() {
        let a = rmat(small());
        let b = rmat(RmatConfig { seed: 99, ..small() });
        assert_ne!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn rmat_is_heavy_tailed() {
        let g = rmat(RmatConfig { scale: 12, edge_factor: 16, ..RmatConfig::default() });
        assert!(
            g.max_degree() as f64 > 20.0 * g.avg_degree(),
            "max {} should dwarf avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn rmat_has_no_self_loops_or_duplicates() {
        let g = rmat(small());
        let mut edges: Vec<_> = g.edges().collect();
        assert!(edges.iter().all(|e| !e.is_loop()));
        let before = edges.len();
        edges.dedup();
        assert_eq!(edges.len(), before);
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT probabilities")]
    fn rmat_rejects_bad_probabilities() {
        rmat(RmatConfig { a: 0.9, b: 0.9, c: 0.9, ..small() });
    }
}
