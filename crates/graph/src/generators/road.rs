//! Road-network generator — the USA-Road stand-in.
//!
//! USA-Road (Table 3) is a low-degree graph (avg 2.5, max 9) with a
//! regular grid-like structure and a long diameter; this is the dataset
//! on which edge-cut SGP (LDG/FENNEL) wins in the paper. A perturbed 2-D
//! lattice has exactly those properties: bounded degree, strong locality,
//! diameter Θ(√n).

use crate::csr::Graph;
use crate::sampling::seeded_rng;
use crate::GraphBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the [`road_grid`] generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoadConfig {
    /// Grid width (number of columns).
    pub width: usize,
    /// Grid height (number of rows).
    pub height: usize,
    /// Fraction of lattice edges randomly removed (road networks are not
    /// complete grids). Kept modest so the graph stays mostly connected.
    pub removal_rate: f64,
    /// Fraction of cells that get a diagonal "shortcut" edge, bumping max
    /// degree above 4 like highway interchanges do.
    pub diagonal_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig { width: 160, height: 160, removal_rate: 0.12, diagonal_rate: 0.05, seed: 0x0AD }
    }
}

impl RoadConfig {
    /// Number of vertices `width * height`.
    pub fn vertices(&self) -> usize {
        self.width * self.height
    }
}

/// Generates a perturbed-lattice road network. Edges are bidirectional
/// (both directions are materialized), matching the undirected DIMACS
/// road graphs used by the paper.
pub fn road_grid(cfg: RoadConfig) -> Graph {
    assert!(cfg.width >= 2 && cfg.height >= 2, "grid must be at least 2x2");
    assert!((0.0..1.0).contains(&cfg.removal_rate), "removal_rate must be in [0,1)");
    assert!((0.0..=1.0).contains(&cfg.diagonal_rate), "diagonal_rate must be in [0,1]");
    let mut rng = seeded_rng(cfg.seed);
    let id = |x: usize, y: usize| (y * cfg.width + x) as u32;
    let mut builder = GraphBuilder::with_capacity(cfg.vertices() * 5);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width && rng.gen::<f64>() >= cfg.removal_rate {
                builder.push_edge(id(x, y), id(x + 1, y));
                builder.push_edge(id(x + 1, y), id(x, y));
            }
            if y + 1 < cfg.height && rng.gen::<f64>() >= cfg.removal_rate {
                builder.push_edge(id(x, y), id(x, y + 1));
                builder.push_edge(id(x, y + 1), id(x, y));
            }
            if x + 1 < cfg.width && y + 1 < cfg.height && rng.gen::<f64>() < cfg.diagonal_rate {
                builder.push_edge(id(x, y), id(x + 1, y + 1));
                builder.push_edge(id(x + 1, y + 1), id(x, y));
            }
        }
    }
    builder.ensure_vertices(cfg.vertices()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoadConfig {
        RoadConfig { width: 20, height: 20, ..RoadConfig::default() }
    }

    #[test]
    fn road_vertex_count() {
        let g = road_grid(small());
        assert_eq!(g.num_vertices(), 400);
    }

    #[test]
    fn road_is_low_degree() {
        let g = road_grid(small());
        // 4 lattice directions + up to 2 diagonals, counted in+out.
        assert!(g.max_degree() <= 12, "max degree {}", g.max_degree());
        assert!(g.avg_degree() < 5.0);
    }

    #[test]
    fn road_edges_are_bidirectional() {
        let g = road_grid(small());
        for e in g.edges() {
            assert!(g.has_edge(e.dst, e.src), "missing reverse of {e}");
        }
    }

    #[test]
    fn road_is_deterministic() {
        let a = road_grid(small());
        let b = road_grid(small());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn road_has_long_diameter_shape() {
        // Sanity: a lattice keeps most vertices far from vertex 0; check
        // BFS from corner reaches depth >= width/2 on an intact-ish grid.
        let g = road_grid(RoadConfig {
            removal_rate: 0.0,
            diagonal_rate: 0.0,
            width: 16,
            height: 16,
            seed: 1,
        });
        let mut dist = vec![usize::MAX; g.num_vertices()];
        let mut q = std::collections::VecDeque::new();
        dist[0] = 0;
        q.push_back(0u32);
        let mut max_d = 0;
        while let Some(v) = q.pop_front() {
            for w in g.out_neighbors(v) {
                if dist[*w as usize] == usize::MAX {
                    dist[*w as usize] = dist[v as usize] + 1;
                    max_d = max_d.max(dist[*w as usize]);
                    q.push_back(*w);
                }
            }
        }
        assert!(max_d >= 30, "lattice diameter should be ~w+h, got {max_d}");
    }

    #[test]
    #[should_panic(expected = "grid must be at least 2x2")]
    fn road_rejects_degenerate_grid() {
        road_grid(RoadConfig { width: 1, height: 5, ..RoadConfig::default() });
    }
}
