//! Synthetic dataset generators standing in for the paper's graphs.
//!
//! The original study uses Twitter (heavy-tailed social network),
//! UK2007-05 (power-law web graph), USA-Road (low-degree, long-diameter
//! road network) and the LDBC SNB SF-1000 friendship graph (Table 3).
//! Those datasets are multi-billion-edge downloads; the reproduction
//! substitutes deterministic generators that preserve the *structural
//! properties the paper's findings depend on*:
//!
//! | Paper dataset | Generator | Preserved property |
//! |---|---|---|
//! | Twitter       | [`rmat`] | heavy-tailed degree distribution, hubs |
//! | UK2007-05     | [`powerlaw_cm`] | power-law degrees with higher skew |
//! | USA-Road      | [`road_grid`] | bounded degree (≤ 9 in Table 3 shape), long diameter |
//! | LDBC SNB      | [`snb_social`] | community structure + heavy-tailed friendships |
//!
//! Every generator is a pure function of its config (including the seed).

mod random;
mod rmat;
mod road;
mod snb;

pub use random::{erdos_renyi, ErdosRenyiConfig};
pub use rmat::{rmat, RmatConfig};
pub use road::{road_grid, RoadConfig};
pub use snb::{snb_social, SnbConfig};

use crate::csr::Graph;
use crate::sampling::seeded_rng;
use crate::types::{Edge, VertexId};
use crate::GraphBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the power-law configuration-model generator
/// ([`powerlaw_cm`]), the UK2007-05 web-graph stand-in.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target average out-degree.
    pub avg_degree: f64,
    /// Rank exponent γ ∈ (0, 1): the degree of the r-th most popular
    /// vertex scales as `r^(−γ)`, yielding a degree-distribution
    /// power-law exponent of `1 + 1/γ` (γ = 0.8 ⇒ ≈ 2.25, the regime of
    /// real web graphs).
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig { vertices: 20_000, avg_degree: 12.0, exponent: 0.8, seed: 0xDEC0DE }
    }
}

/// Configuration-model generator with power-law degrees on both sides.
///
/// Every vertex is assigned a popularity rank; out-degrees follow
/// `d(r) ∝ r^(−γ)` scaled to the requested mean, and targets are chosen
/// preferentially with the same rank weights — so the *in*-degree
/// distribution is power-law too, the property that DBH and HDRF exploit
/// (§4.2.2 of the paper).
pub fn powerlaw_cm(cfg: PowerLawConfig) -> Graph {
    assert!(cfg.vertices > 1, "need at least two vertices");
    assert!(
        cfg.exponent > 0.0 && cfg.exponent < 1.5,
        "rank exponent should be in (0, 1.5); degree exponent is 1 + 1/γ"
    );
    let n = cfg.vertices;
    let mut rng = seeded_rng(cfg.seed);

    // Identify popularity rank with vertex id, then shuffle so hubs are
    // spread over the id space (real crawls do not order by degree).
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    crate::sampling::shuffle(&mut perm, &mut rng);

    // Rank weights w(r) = (r+1)^(−γ), scaled so degrees sum to avg·n.
    let weights: Vec<f64> = (0..n).map(|r| ((r + 1) as f64).powf(-cfg.exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    let scale = cfg.avg_degree * n as f64 / wsum;
    // Cap hub degrees at n/8 so dedup losses stay negligible.
    let cap = (n / 8).max(2) as f64;
    let degrees: Vec<usize> =
        weights.iter().map(|w| ((w * scale).round().max(1.0)).min(cap) as usize).collect();

    let alias = crate::sampling::AliasTable::new(&weights);
    let mut builder = GraphBuilder::with_capacity((cfg.avg_degree * n as f64) as usize);
    for r in 0..n {
        let src = perm[r];
        let mut placed = 0usize;
        let mut attempts = 0usize;
        // Distinct-target sampling with bounded retries; duplicates the
        // builder would drop anyway are simply not counted as placed.
        let budget = degrees[r];
        let max_attempts = budget * 4 + 16;
        let mut seen: Vec<VertexId> = Vec::with_capacity(budget.min(64));
        while placed < budget && attempts < max_attempts {
            attempts += 1;
            let dst = perm[alias.sample(&mut rng)];
            if dst == src || seen.contains(&dst) {
                continue;
            }
            if seen.len() < 64 {
                seen.push(dst);
            }
            builder.push_edge(src, dst);
            placed += 1;
        }
    }
    builder.ensure_vertices(n).build()
}

/// Samples `count` distinct query start vertices, biased by out-degree
/// when `degree_biased` is set (the LDBC parameter-binding generator picks
/// "person" start vertices whose activity correlates with degree).
pub fn sample_start_vertices(
    g: &Graph,
    count: usize,
    degree_biased: bool,
    seed: u64,
) -> Vec<VertexId> {
    let mut rng = seeded_rng(seed);
    let n = g.num_vertices();
    assert!(n > 0, "cannot sample from empty graph");
    let mut out = Vec::with_capacity(count);
    if degree_biased {
        let weights: Vec<f64> = g.vertices().map(|v| (g.degree(v) + 1) as f64).collect();
        let alias = crate::sampling::AliasTable::new(&weights);
        for _ in 0..count {
            out.push(alias.sample(&mut rng) as VertexId);
        }
    } else {
        for _ in 0..count {
            out.push(rng.gen_range(0..n) as VertexId);
        }
    }
    out
}

/// Convenience: collect a generator's edges (used in tests and benches).
pub fn edges_of(g: &Graph) -> Vec<Edge> {
    g.edges().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powerlaw_is_deterministic() {
        let cfg = PowerLawConfig { vertices: 500, avg_degree: 4.0, exponent: 0.8, seed: 1 };
        let a = powerlaw_cm(cfg);
        let b = powerlaw_cm(cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(edges_of(&a), edges_of(&b));
    }

    #[test]
    fn powerlaw_has_heavy_tail() {
        let g = powerlaw_cm(PowerLawConfig {
            vertices: 2000,
            avg_degree: 8.0,
            exponent: 0.85,
            seed: 2,
        });
        // Max degree should far exceed the average for a power-law graph.
        assert!(
            g.max_degree() as f64 > 10.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn powerlaw_vertex_count_respected() {
        let g =
            powerlaw_cm(PowerLawConfig { vertices: 333, avg_degree: 3.0, exponent: 0.7, seed: 3 });
        assert_eq!(g.num_vertices(), 333);
    }

    #[test]
    fn start_vertex_sampling_uniform_in_range() {
        let g =
            powerlaw_cm(PowerLawConfig { vertices: 100, avg_degree: 3.0, exponent: 0.5, seed: 4 });
        let picks = sample_start_vertices(&g, 50, false, 9);
        assert_eq!(picks.len(), 50);
        assert!(picks.iter().all(|&v| (v as usize) < 100));
    }

    #[test]
    fn start_vertex_sampling_degree_biased_prefers_hubs() {
        let g = powerlaw_cm(PowerLawConfig {
            vertices: 1000,
            avg_degree: 10.0,
            exponent: 0.9,
            seed: 5,
        });
        let picks = sample_start_vertices(&g, 2000, true, 10);
        let avg_deg_of_picks: f64 =
            picks.iter().map(|&v| g.degree(v) as f64).sum::<f64>() / picks.len() as f64;
        let avg_deg: f64 =
            g.vertices().map(|v| g.degree(v) as f64).sum::<f64>() / g.num_vertices() as f64;
        assert!(
            avg_deg_of_picks > avg_deg,
            "biased picks should hit hubs: {avg_deg_of_picks} vs {avg_deg}"
        );
    }
}
