//! Erdős–Rényi G(n, m) generator, used as a structure-free control graph
//! in tests and property-based checks (uniform random graphs are where
//! hash partitioning's expected cut-size formulas hold exactly).

use crate::csr::Graph;
use crate::sampling::seeded_rng;
use crate::GraphBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the [`erdos_renyi`] generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges to attempt (duplicates/self-loops dropped).
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErdosRenyiConfig {
    fn default() -> Self {
        ErdosRenyiConfig { vertices: 1000, edges: 8000, seed: 0xE12D05 }
    }
}

/// Generates a uniform random directed graph with ~`edges` edges.
pub fn erdos_renyi(cfg: ErdosRenyiConfig) -> Graph {
    assert!(cfg.vertices >= 2, "need at least two vertices");
    let mut rng = seeded_rng(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(cfg.edges);
    for _ in 0..cfg.edges {
        let src = rng.gen_range(0..cfg.vertices) as u32;
        let dst = rng.gen_range(0..cfg.vertices) as u32;
        builder.push_edge(src, dst);
    }
    builder.ensure_vertices(cfg.vertices).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_vertex_count() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 50, edges: 100, seed: 1 });
        assert_eq!(g.num_vertices(), 50);
    }

    #[test]
    fn er_edge_count_close_to_target() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 1000, edges: 5000, seed: 2 });
        assert!(g.num_edges() > 4500 && g.num_edges() <= 5000, "edges {}", g.num_edges());
    }

    #[test]
    fn er_is_deterministic() {
        let a = erdos_renyi(ErdosRenyiConfig::default());
        let b = erdos_renyi(ErdosRenyiConfig::default());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn er_degrees_are_concentrated() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 2000, edges: 20_000, seed: 3 });
        // Uniform random: max degree stays within a small multiple of avg.
        assert!((g.max_degree() as f64) < 6.0 * g.avg_degree());
    }
}
