//! Seeded edge insert/delete stream generators — the dynamic-graph
//! workload of the churn scenario (DESIGN.md §12).
//!
//! The paper evaluates one-pass partitioners on *static* edge streams;
//! the restreaming line of work (Nishimura & Ugander; Le Merrer et al.)
//! asks what happens when the graph keeps changing underneath the
//! partitioning. [`ChurnStream`] turns an immutable seed [`Graph`] into
//! a deterministic sequence of batches: each batch deletes a seeded
//! sample of existing edges, inserts a seeded sample of fresh ones, and
//! yields the rebuilt graph, so a consumer can measure partition-quality
//! drift and decide when to repartition.
//!
//! Determinism contract: all randomness derives from
//! [`ChurnConfig::seed`] through the workspace RNG, membership is kept
//! in insertion-ordered vectors plus a [`BTreeSet`] (never a hash map),
//! and the rebuilt graphs go through [`GraphBuilder`]'s canonical
//! dedup/sort pipeline — the same `(graph, config)` always produces
//! byte-identical batches.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::sampling::seeded_rng;
use crate::types::{Edge, VertexId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Shape of the churn workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of batches the stream yields.
    pub batches: usize,
    /// Fresh edges inserted per batch (rejection-sampled against the
    /// current membership; a batch may fall short on dense graphs).
    pub inserts_per_batch: usize,
    /// Existing edges deleted per batch (capped by the edges present).
    pub deletes_per_batch: usize,
    /// Seed for every sampling decision.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { batches: 8, inserts_per_batch: 64, deletes_per_batch: 64, seed: 0xC4C4_0001 }
    }
}

/// One mutation of the dynamic edge stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A fresh edge arrives.
    Insert(Edge),
    /// An existing edge is retracted.
    Delete(Edge),
}

/// One batch of churn: the ops applied plus the graph rebuilt after
/// applying them (same vertex universe as the seed graph).
#[derive(Debug, Clone)]
pub struct ChurnBatch {
    /// 0-based batch index.
    pub index: usize,
    /// Deletions first, then insertions, each in sampling order.
    pub ops: Vec<ChurnOp>,
    /// The graph after this batch (CSR, canonical builder pipeline).
    pub graph: Graph,
}

/// Deterministic generator of [`ChurnBatch`]es over a seed graph.
#[derive(Debug, Clone)]
pub struct ChurnStream {
    edges: Vec<Edge>,
    present: BTreeSet<(VertexId, VertexId)>,
    n: usize,
    rng: StdRng,
    cfg: ChurnConfig,
    emitted: usize,
}

impl ChurnStream {
    /// Creates the stream over `g`'s edge set; the vertex universe stays
    /// fixed at `g.num_vertices()` while edges churn.
    pub fn new(g: &Graph, cfg: ChurnConfig) -> Self {
        let edges: Vec<Edge> = g.edges().collect();
        let present = edges.iter().map(|e| (e.src, e.dst)).collect();
        ChurnStream {
            edges,
            present,
            n: g.num_vertices(),
            rng: seeded_rng(cfg.seed),
            cfg,
            emitted: 0,
        }
    }

    /// Batches still to come.
    pub fn remaining(&self) -> usize {
        self.cfg.batches - self.emitted
    }

    /// Edges currently live in the dynamic graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Produces the next batch, or `None` once
    /// [`ChurnConfig::batches`] have been emitted.
    pub fn next_batch(&mut self) -> Option<ChurnBatch> {
        if self.emitted >= self.cfg.batches {
            return None;
        }
        let index = self.emitted;
        self.emitted += 1;
        let mut ops = Vec::with_capacity(self.cfg.deletes_per_batch + self.cfg.inserts_per_batch);
        for _ in 0..self.cfg.deletes_per_batch {
            if self.edges.is_empty() {
                break;
            }
            let idx = self.rng.gen_range(0..self.edges.len());
            // Ordered removal keeps the membership vector a pure function
            // of the op sequence (swap_remove would depend on length
            // history in a more fragile way and reorder survivors).
            let e = self.edges.remove(idx);
            self.present.remove(&(e.src, e.dst));
            ops.push(ChurnOp::Delete(e));
        }
        for _ in 0..self.cfg.inserts_per_batch {
            if self.n < 2 {
                break;
            }
            // Bounded rejection sampling: a dense graph may reject every
            // draw, in which case the batch simply inserts fewer edges —
            // deterministically, since the draw count is bounded.
            for _attempt in 0..32 {
                let src = self.rng.gen_range(0..self.n as VertexId);
                let dst = self.rng.gen_range(0..self.n as VertexId);
                if src == dst || self.present.contains(&(src, dst)) {
                    continue;
                }
                let e = Edge::new(src, dst);
                self.present.insert((src, dst));
                self.edges.push(e);
                ops.push(ChurnOp::Insert(e));
                break;
            }
        }
        let mut b = GraphBuilder::with_capacity(self.edges.len()).ensure_vertices(self.n);
        for e in &self.edges {
            b.push_edge(e.src, e.dst);
        }
        Some(ChurnBatch { index, ops, graph: b.build() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, ErdosRenyiConfig};

    fn seed_graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 120, edges: 600, seed: 5 })
    }

    fn collect(cfg: ChurnConfig) -> Vec<ChurnBatch> {
        let g = seed_graph();
        let mut s = ChurnStream::new(&g, cfg);
        std::iter::from_fn(|| s.next_batch()).collect()
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = ChurnConfig::default();
        let a = collect(cfg);
        let b = collect(cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops, y.ops, "batch {}", x.index);
            assert_eq!(
                x.graph.edges().collect::<Vec<_>>(),
                y.graph.edges().collect::<Vec<_>>(),
                "batch {}",
                x.index
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = collect(ChurnConfig::default());
        let b = collect(ChurnConfig { seed: 99, ..ChurnConfig::default() });
        assert_ne!(a[0].ops, b[0].ops);
    }

    #[test]
    fn batch_count_and_vertex_universe_hold() {
        let cfg = ChurnConfig { batches: 5, ..ChurnConfig::default() };
        let batches = collect(cfg);
        assert_eq!(batches.len(), 5);
        for b in &batches {
            assert_eq!(b.graph.num_vertices(), seed_graph().num_vertices());
        }
    }

    #[test]
    fn ops_match_membership_delta() {
        let g = seed_graph();
        let mut s = ChurnStream::new(&g, ChurnConfig::default());
        let before = s.num_edges();
        let b = s.next_batch().unwrap();
        let deletes = b.ops.iter().filter(|o| matches!(o, ChurnOp::Delete(_))).count();
        let inserts = b.ops.iter().filter(|o| matches!(o, ChurnOp::Insert(_))).count();
        assert_eq!(s.num_edges(), before - deletes + inserts);
        assert_eq!(b.graph.num_edges(), s.num_edges());
    }

    #[test]
    fn deletes_only_existing_inserts_only_fresh() {
        let g = seed_graph();
        let mut membership: BTreeSet<(VertexId, VertexId)> =
            g.edges().map(|e| (e.src, e.dst)).collect();
        let mut s = ChurnStream::new(&g, ChurnConfig::default());
        while let Some(b) = s.next_batch() {
            for op in &b.ops {
                match *op {
                    ChurnOp::Delete(e) => {
                        assert!(membership.remove(&(e.src, e.dst)), "deleted a missing edge")
                    }
                    ChurnOp::Insert(e) => {
                        assert_ne!(e.src, e.dst, "inserted a self-loop");
                        assert!(membership.insert((e.src, e.dst)), "inserted a duplicate")
                    }
                }
            }
            assert_eq!(b.graph.num_edges(), membership.len());
        }
    }

    #[test]
    fn empty_graph_inserts_without_panicking() {
        let g = GraphBuilder::new().ensure_vertices(10).build();
        let mut s = ChurnStream::new(&g, ChurnConfig { batches: 2, ..ChurnConfig::default() });
        let b = s.next_batch().unwrap();
        assert!(b.ops.iter().all(|o| matches!(o, ChurnOp::Insert(_))));
        assert!(b.graph.num_edges() > 0);
    }
}
