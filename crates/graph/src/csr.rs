//! Immutable compressed-sparse-row graph with out- and in-adjacency.

use crate::types::{Edge, VertexId};
use serde::{Deserialize, Serialize};

/// An immutable directed graph in compressed-sparse-row form.
///
/// Both out-adjacency (for scatter phases and 1-hop queries) and
/// in-adjacency (for PageRank-style gathers) are materialized, mirroring
/// what PowerLyra and JanusGraph keep per machine. Construction goes
/// through [`crate::GraphBuilder`] or the generator functions.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    /// CSR row offsets into `out_targets`, length `n + 1`.
    out_offsets: Vec<u64>,
    out_targets: Vec<VertexId>,
    /// CSR row offsets into `in_sources`, length `n + 1`.
    in_offsets: Vec<u64>,
    in_sources: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph from an edge list that is already sorted by
    /// `(src, dst)` when `sorted` construction is possible. Used by
    /// [`crate::GraphBuilder::build`]; prefer the builder in user code.
    pub(crate) fn from_sorted_edges(n: usize, mut edges: Vec<Edge>, needs_sort: bool) -> Self {
        if needs_sort {
            edges.sort_unstable();
        }
        let m = edges.len();
        let mut out_offsets = vec![0u64; n + 1];
        let mut in_degrees = vec![0u64; n];
        for e in &edges {
            out_offsets[e.src as usize + 1] += 1;
            in_degrees[e.dst as usize] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        out_targets.extend(edges.iter().map(|e| e.dst));

        let mut in_offsets = vec![0u64; n + 1];
        for i in 0..n {
            in_offsets[i + 1] = in_offsets[i] + in_degrees[i];
        }
        let mut cursor = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as VertexId; m];
        for e in &edges {
            let c = &mut cursor[e.dst as usize];
            in_sources[*c as usize] = e.src;
            *c += 1;
        }
        // Keep in-neighbour lists sorted for deterministic iteration and
        // binary-search membership tests.
        for v in 0..n {
            let (s, t) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            in_sources[s..t].sort_unstable();
        }
        Graph { num_vertices: n, out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Total degree (in + out) of `v`, the degree notion used by the
    /// paper's edge-cut heuristics on undirected neighbourhoods.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Out-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, t) =
            (self.out_offsets[v as usize] as usize, self.out_offsets[v as usize + 1] as usize);
        &self.out_targets[s..t]
    }

    /// In-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, t) =
            (self.in_offsets[v as usize] as usize, self.in_offsets[v as usize + 1] as usize);
        &self.in_sources[s..t]
    }

    /// Iterates the union of in- and out-neighbours of `v` (with
    /// duplicates when an edge exists in both directions). This is the
    /// neighbourhood `N(u)` that vertex-stream partitioners see.
    pub fn undirected_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_neighbors(v).iter().copied().chain(self.in_neighbors(v).iter().copied())
    }

    /// True if the directed edge `src -> dst` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    /// Dense index of the directed edge `src -> dst` in [`Graph::edges`]
    /// iteration order, or `None` if the edge does not exist. Partition
    /// assignments are stored as arrays indexed by this value.
    ///
    /// Only meaningful on deduplicated graphs (the builder default); with
    /// multi-edges the index of the first occurrence is returned.
    pub fn edge_index(&self, src: VertexId, dst: VertexId) -> Option<usize> {
        let pos = self.out_neighbors(src).binary_search(&dst).ok()?;
        Some(self.out_offsets[src as usize] as usize + pos)
    }

    /// Range of dense edge indices covering all out-edges of `v` (in
    /// [`Graph::edges`] order); `out_neighbors(v)[i]` is the target of
    /// edge index `out_edge_range(v).start + i`.
    pub fn out_edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.out_offsets[v as usize] as usize..self.out_offsets[v as usize + 1] as usize
    }

    /// Iterates all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices as VertexId
    }

    /// Iterates all directed edges in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices()
            .flat_map(move |v| self.out_neighbors(v).iter().map(move |&w| Edge::new(v, w)))
    }

    /// The maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_out_degree(&self) -> usize {
        self.vertices().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// The maximum total degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average out-degree `m / n` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Materializes the full out-degree sequence. The Appendix-B
    /// replication-factor expectation `ψ(d, k)` is evaluated over this.
    pub fn out_degree_sequence(&self) -> Vec<usize> {
        self.vertices().map(|v| self.out_degree(v)).collect()
    }

    /// Returns the undirected view of this graph (every edge mirrored,
    /// deduplicated, self-loops dropped). WCC and the METIS-like offline
    /// partitioner operate on this view, as does the paper's weighted
    /// workload-aware experiment.
    pub fn to_undirected(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.num_edges() * 2);
        for e in self.edges() {
            if !e.is_loop() {
                let c = e.canonical();
                edges.push(c);
                edges.push(c.reversed());
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph::from_sorted_edges(self.num_vertices, edges, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(1, 3).add_edge(2, 3).build()
    }

    #[test]
    fn csr_basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn csr_adjacency_sorted() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert!(g.out_neighbors(3).is_empty());
        assert!(g.in_neighbors(0).is_empty());
    }

    #[test]
    fn csr_has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_index_matches_iteration_order() {
        let g = diamond();
        for (i, e) in g.edges().enumerate() {
            assert_eq!(g.edge_index(e.src, e.dst), Some(i));
        }
        assert_eq!(g.edge_index(3, 0), None);
    }

    #[test]
    fn csr_edges_roundtrip() {
        let g = diamond();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 3), Edge::new(2, 3)]);
    }

    #[test]
    fn csr_degree_stats() {
        let g = diamond();
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_view_mirrors_edges() {
        let g = diamond().to_undirected();
        assert_eq!(g.num_edges(), 8);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        assert_eq!(g.out_degree(3), 2);
    }

    #[test]
    fn undirected_view_dedups_bidirectional_pairs() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 0).build().to_undirected();
        assert_eq!(g.num_edges(), 2); // 0->1 and 1->0 exactly once each
    }

    #[test]
    fn undirected_neighbors_covers_both_directions() {
        let g = diamond();
        let n1: Vec<_> = g.undirected_neighbors(1).collect();
        assert_eq!(n1, vec![3, 0]); // out first, then in
    }
}
