//! # sgp-graph
//!
//! Graph representation, streaming input models, and synthetic dataset
//! generators for the reproduction of *"Experimental Analysis of Streaming
//! Algorithms for Graph Partitioning"* (Pacaci & Özsu, SIGMOD 2019).
//!
//! The paper's partitioning algorithms consume graphs in one of two
//! streaming forms (§3 of the paper):
//!
//! * a **vertex stream**, where each element is a vertex together with its
//!   complete neighbourhood `N(u)` (the adjacency-list loading model used
//!   by LDG and FENNEL), and
//! * an **edge stream**, where edges `(u, v)` arrive one at a time in an
//!   arbitrary order (the model used by DBH, Grid, HDRF and friends).
//!
//! This crate provides:
//!
//! * [`Graph`]: an immutable compressed-sparse-row (CSR) directed graph
//!   with both out- and in-adjacency, built via [`GraphBuilder`];
//! * [`stream`]: adapters that replay a [`Graph`] as a vertex or edge
//!   stream in several orders (random, BFS, DFS, natural);
//! * [`generators`]: deterministic synthetic generators standing in for
//!   the paper's datasets (Twitter, UK2007-05, USA-Road, LDBC SNB);
//! * [`sampling`]: Zipf and other samplers used by generators and by the
//!   skewed online-query workloads;
//! * [`stats`]: dataset characteristics à la the paper's Table 3;
//! * [`io`]: a plain-text edge-list format for persistence.
//!
//! All randomness is seeded explicitly so that every experiment in the
//! reproduction is deterministic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod churn;
pub mod csr;
pub mod generators;
pub mod io;
pub mod sampling;
pub mod stats;
pub mod stream;
pub mod types;

pub use builder::GraphBuilder;
pub use churn::{ChurnBatch, ChurnConfig, ChurnOp, ChurnStream};
pub use csr::Graph;
pub use stats::GraphStats;
pub use stream::{EdgeStream, EdgeStreamSource, StreamOrder, VertexStream, VertexStreamSource};
pub use types::{Edge, VertexId};
