//! Deterministic samplers used by generators and workload drivers.
//!
//! The online-query experiments of the paper (§6.3) depend on *workload
//! skew*: a minority of start vertices receive the majority of queries.
//! We model that with a Zipf sampler; graph generators additionally use a
//! discrete alias sampler for degree-proportional choices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard deterministic RNG from a 64-bit seed.
///
/// Every experiment in the reproduction derives all randomness from an
/// explicit seed through this function, so reruns are bit-identical.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A Zipf(θ) sampler over `0..n` using the classic cumulative-inversion
/// construction. Rank 0 is the most popular item.
///
/// θ = 0 degenerates to the uniform distribution; θ around 0.8–1.2 matches
/// the access skew reported for social-network query logs.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one item");
        assert!(theta >= 0.0 && theta.is_finite(), "Zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point round-off on the final bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has exactly one item.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // sgp-lint: allow(no-panic-in-lib): cdf entries are partial sums of positive finite weights and u is in [0, 1), so partial_cmp is total here
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Walker alias-method sampler for arbitrary discrete distributions.
///
/// Used for degree-proportional vertex choices in the preferential
/// attachment and configuration-model generators, where O(1) sampling
/// matters for generator throughput benchmarks.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable requires at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "AliasTable weights must sum to a positive value");
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Samples an index in `0..weights.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of items in the table.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false: construction requires at least one weight.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Fisher–Yates shuffle driven by the workspace RNG; convenience used by
/// the stream-order adapters.
pub fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-9, "pmf({i}) = {}", z.pmf(i));
        }
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn zipf_cdf_terminates_at_one() {
        let z = Zipf::new(10, 0.99);
        let total: f64 = (0..10).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = Zipf::new(50, 1.2);
        let mut rng = seeded_rng(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 20_000 / 50, "head should beat uniform share");
    }

    #[test]
    fn alias_table_matches_weights() {
        let t = AliasTable::new(&[1.0, 3.0]);
        let mut rng = seeded_rng(42);
        let mut ones = 0usize;
        let trials = 40_000;
        for _ in 0..trials {
            if t.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn alias_table_single_item() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = seeded_rng(1);
        assert_eq!(t.sample(&mut rng), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = seeded_rng(3);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "seeded shuffle should move something");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u32> = (0..5).map(|_| seeded_rng(9).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| seeded_rng(9).gen()).collect();
        assert_eq!(a, b);
    }
}
