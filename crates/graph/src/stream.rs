//! Streaming input models (§3 of the paper).
//!
//! A streaming partitioner is "sequentially presented a stream
//! `S = <a1, a2, ...>` of graph G where `ai` is either an edge `(u, v)` or
//! a vertex `u` and its neighbors `N(u)`". This module replays an
//! immutable [`Graph`] as either stream, in a configurable arrival order.
//!
//! Stream order matters: §4.2.2 notes that PowerGraph's greedy vertex-cut
//! "is sensitive to stream orders and might result in a single partition
//! in case of breadth-first traversal order", which HDRF's balance term
//! avoids. The [`StreamOrder`] options let the reproduction's ablation
//! benches exercise exactly that.
//!
//! Two layers are exposed:
//!
//! * [`VertexStreamSource`] / [`EdgeStreamSource`] — chunked cursors that
//!   yield bounded chunks of stream elements in any order. `Natural`
//!   order walks the CSR directly (O(1) cursor state), `Bfs`/`Dfs` hold
//!   only the O(|V|) vertex visit order (edges are expanded lazily), and
//!   only `Random` materializes the full element permutation, because the
//!   seeded Fisher–Yates shuffle finalizes the *last* position first and
//!   therefore cannot be replayed lazily from the front.
//! * [`VertexStream`] / [`EdgeStream`] — the original whole-stream
//!   iterators, now thin adapters over the sources (`EdgeStream` remains
//!   fully materialized; it is the baseline the `ingest` bench compares
//!   chunked ingestion against).

use crate::csr::Graph;
use crate::sampling::{seeded_rng, shuffle};
use crate::types::{Edge, VertexId};
use serde::{Deserialize, Serialize};

/// Arrival order of stream elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamOrder {
    /// The natural order of the dataset (vertex id / CSR order).
    Natural,
    /// Uniformly random permutation, seeded.
    Random {
        /// RNG seed for the permutation.
        seed: u64,
    },
    /// Breadth-first traversal from vertex 0 (unreached vertices appended
    /// in natural order afterwards, as in the original LDG evaluation).
    Bfs,
    /// Depth-first traversal from vertex 0 (unreached vertices appended).
    Dfs,
    /// Breadth-first traversal from a configurable start vertex.
    ///
    /// `BfsFrom { start: 0 }` is exactly [`StreamOrder::Bfs`]; the unit
    /// variants are kept so previously serialized orders still
    /// deserialize (backward-compatible default start of 0).
    BfsFrom {
        /// Root the traversal begins at (components unreachable from it
        /// are appended in natural root order, as with `Bfs`).
        start: VertexId,
    },
    /// Depth-first traversal from a configurable start vertex; see
    /// [`StreamOrder::BfsFrom`].
    DfsFrom {
        /// Root the traversal begins at.
        start: VertexId,
    },
}

impl Default for StreamOrder {
    fn default() -> Self {
        StreamOrder::Random { seed: 0x5347_5021 }
    }
}

/// Computes a vertex visit order over the undirected structure of `g`.
fn vertex_order(g: &Graph, order: StreamOrder) -> Vec<VertexId> {
    let n = g.num_vertices();
    match order {
        StreamOrder::Natural => (0..n as VertexId).collect(),
        StreamOrder::Random { seed } => {
            let mut v: Vec<VertexId> = (0..n as VertexId).collect();
            shuffle(&mut v, &mut seeded_rng(seed));
            v
        }
        StreamOrder::Bfs => traversal_order(g, true, 0),
        StreamOrder::Dfs => traversal_order(g, false, 0),
        StreamOrder::BfsFrom { start } => traversal_order(g, true, start),
        StreamOrder::DfsFrom { start } => traversal_order(g, false, start),
    }
}

fn traversal_order(g: &Graph, bfs: bool, start: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut frontier: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
    // The configured start vertex (if in range) is explored first; the
    // remaining components are then covered in natural root order, which
    // makes `start = 0` reproduce the historical fixed-root behaviour.
    for root in std::iter::once(start).chain(0..n as VertexId) {
        if (root as usize) >= n || seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        frontier.push_back(root);
        while let Some(v) = if bfs { frontier.pop_front() } else { frontier.pop_back() } {
            out.push(v);
            for w in g.undirected_neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    frontier.push_back(w);
                }
            }
        }
    }
    out
}

/// A single vertex-stream element: a vertex with its full (undirected)
/// neighbourhood, the input model of LDG/FENNEL (§4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRecord {
    /// The arriving vertex.
    pub vertex: VertexId,
    /// Its complete neighbourhood `N(u)` over the undirected structure
    /// (out- and in-neighbours, deduplicated, sorted).
    pub neighbors: Vec<VertexId>,
    /// Out-neighbours only — needed when deriving the Appendix-B
    /// edge-disjoint placement (all out-edges follow the source).
    pub out_neighbors: Vec<VertexId>,
}

impl VertexRecord {
    /// Builds the stream element for `v` exactly as the stream sources
    /// do: undirected neighbourhood sorted and deduplicated, out-edges
    /// verbatim. Exposed so consumers that persist buffered records by
    /// vertex id (the windowed partitioner's snapshot layer) can rebuild
    /// them canonically from the graph.
    pub fn for_vertex(g: &Graph, v: VertexId) -> VertexRecord {
        let mut neighbors: Vec<VertexId> = g.undirected_neighbors(v).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        VertexRecord { vertex: v, neighbors, out_neighbors: g.out_neighbors(v).to_vec() }
    }
}

/// Cursor state of a [`VertexStreamSource`].
#[derive(Debug, Clone)]
enum VertexCursor {
    /// Natural order needs no buffer at all: just a position counter.
    Natural { next: VertexId },
    /// Random / traversal orders hold the materialized visit order.
    Materialized { order: Vec<VertexId>, pos: usize },
}

/// Chunked vertex-stream cursor: yields bounded chunks of
/// [`VertexRecord`]s in any [`StreamOrder`] without materializing the
/// records (and, for `Natural`, without materializing the permutation
/// either). This is the ingestion primitive of the incremental
/// partitioner core; [`VertexStream`] wraps it as a plain iterator.
#[derive(Debug, Clone)]
pub struct VertexStreamSource<'g> {
    graph: &'g Graph,
    cursor: VertexCursor,
}

impl<'g> VertexStreamSource<'g> {
    /// Creates a chunked vertex source over `g` in the given order.
    pub fn new(g: &'g Graph, order: StreamOrder) -> Self {
        let cursor = match order {
            StreamOrder::Natural => VertexCursor::Natural { next: 0 },
            _ => VertexCursor::Materialized { order: vertex_order(g, order), pos: 0 },
        };
        VertexStreamSource { graph: g, cursor }
    }

    /// Total number of elements in the stream (`|V|`).
    pub fn len(&self) -> usize {
        self.graph.num_vertices()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements not yet yielded since the last [`restart`](Self::restart).
    pub fn remaining(&self) -> usize {
        match &self.cursor {
            VertexCursor::Natural { next } => self.len() - *next as usize,
            VertexCursor::Materialized { order, pos } => order.len() - pos,
        }
    }

    /// Restarts the stream from the beginning with the same order — the
    /// primitive behind the re-streaming variants (re-LDG / re-FENNEL).
    pub fn restart(&mut self) {
        match &mut self.cursor {
            VertexCursor::Natural { next } => *next = 0,
            VertexCursor::Materialized { pos, .. } => *pos = 0,
        }
    }

    fn next_vertex(&mut self) -> Option<VertexId> {
        match &mut self.cursor {
            VertexCursor::Natural { next } => {
                if (*next as usize) < self.graph.num_vertices() {
                    let v = *next;
                    *next += 1;
                    Some(v)
                } else {
                    None
                }
            }
            VertexCursor::Materialized { order, pos } => {
                let v = *order.get(*pos)?;
                *pos += 1;
                Some(v)
            }
        }
    }

    fn record_of(&self, v: VertexId) -> VertexRecord {
        VertexRecord::for_vertex(self.graph, v)
    }

    /// Yields the next stream element, or `None` at end of stream.
    pub fn next_record(&mut self) -> Option<VertexRecord> {
        self.next_vertex().map(|v| self.record_of(v))
    }

    /// Fills `out` with the next up-to-`max_len` stream elements
    /// (clearing it first) and returns how many were produced; 0 means
    /// end of stream. `max_len = 0` is treated as 1 so the cursor always
    /// makes progress.
    pub fn next_chunk(&mut self, max_len: usize, out: &mut Vec<VertexRecord>) -> usize {
        out.clear();
        let max_len = max_len.max(1);
        while out.len() < max_len {
            match self.next_record() {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        out.len()
    }
}

/// Replays a [`Graph`] as a vertex stream (adjacency-list loading model).
#[derive(Debug, Clone)]
pub struct VertexStream<'g> {
    source: VertexStreamSource<'g>,
}

impl<'g> VertexStream<'g> {
    /// Creates a vertex stream over `g` in the given arrival order.
    pub fn new(g: &'g Graph, order: StreamOrder) -> Self {
        VertexStream { source: VertexStreamSource::new(g, order) }
    }

    /// Total number of elements in the stream (`|V|`).
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Restarts the stream from the beginning with the same order — the
    /// primitive behind the re-streaming variants (re-LDG / re-FENNEL).
    pub fn restart(&mut self) {
        self.source.restart();
    }
}

impl<'g> Iterator for VertexStream<'g> {
    type Item = VertexRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.source.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.source.remaining();
        (rem, Some(rem))
    }
}

/// Cursor state of an [`EdgeStreamSource`].
#[derive(Debug, Clone)]
enum EdgeCursor {
    /// Natural order walks the CSR in place: no buffer at all.
    Csr { v: VertexId, off: usize },
    /// Traversal orders expand the out-edges of each vertex of the O(|V|)
    /// visit order lazily — no O(|E|) buffer.
    ByVertex { order: Vec<VertexId>, vi: usize, off: usize },
    /// Random order must materialize the permutation (backward
    /// Fisher–Yates finalizes the last slot first, so it cannot stream).
    Materialized { edges: Vec<Edge>, pos: usize },
}

/// Chunked edge-stream cursor: yields bounded chunks of [`Edge`]s in any
/// [`StreamOrder`]. `Natural` and the traversal orders never allocate the
/// O(|E|) edge vector the materialized [`EdgeStream`] carries.
///
/// For `StreamOrder::Bfs`/`Dfs` the edges arrive grouped by the traversal
/// order of their source vertex, which is the adversarial order for
/// PowerGraph-style greedy placement.
#[derive(Debug, Clone)]
pub struct EdgeStreamSource<'g> {
    graph: &'g Graph,
    cursor: EdgeCursor,
    emitted: usize,
}

impl<'g> EdgeStreamSource<'g> {
    /// Creates a chunked edge source over `g` in the given order.
    pub fn new(g: &'g Graph, order: StreamOrder) -> Self {
        let cursor = match order {
            StreamOrder::Natural => EdgeCursor::Csr { v: 0, off: 0 },
            StreamOrder::Random { seed } => {
                let mut e: Vec<Edge> = g.edges().collect();
                shuffle(&mut e, &mut seeded_rng(seed ^ 0x9E37_79B9));
                EdgeCursor::Materialized { edges: e, pos: 0 }
            }
            StreamOrder::Bfs
            | StreamOrder::Dfs
            | StreamOrder::BfsFrom { .. }
            | StreamOrder::DfsFrom { .. } => {
                EdgeCursor::ByVertex { order: vertex_order(g, order), vi: 0, off: 0 }
            }
        };
        EdgeStreamSource { graph: g, cursor, emitted: 0 }
    }

    /// Total number of elements in the stream (`|E|`).
    pub fn len(&self) -> usize {
        self.graph.num_edges()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements not yet yielded since the last [`restart`](Self::restart).
    pub fn remaining(&self) -> usize {
        self.len() - self.emitted
    }

    /// Restarts the stream from the beginning with the same order.
    pub fn restart(&mut self) {
        self.emitted = 0;
        match &mut self.cursor {
            EdgeCursor::Csr { v, off } => {
                *v = 0;
                *off = 0;
            }
            EdgeCursor::ByVertex { vi, off, .. } => {
                *vi = 0;
                *off = 0;
            }
            EdgeCursor::Materialized { pos, .. } => *pos = 0,
        }
    }

    /// Yields the next stream element, or `None` at end of stream.
    pub fn next_edge(&mut self) -> Option<Edge> {
        let e = match &mut self.cursor {
            EdgeCursor::Csr { v, off } => loop {
                if (*v as usize) >= self.graph.num_vertices() {
                    break None;
                }
                let outs = self.graph.out_neighbors(*v);
                if *off < outs.len() {
                    let e = Edge::new(*v, outs[*off]);
                    *off += 1;
                    break Some(e);
                }
                *v += 1;
                *off = 0;
            },
            EdgeCursor::ByVertex { order, vi, off } => loop {
                let Some(&src) = order.get(*vi) else { break None };
                let outs = self.graph.out_neighbors(src);
                if *off < outs.len() {
                    let e = Edge::new(src, outs[*off]);
                    *off += 1;
                    break Some(e);
                }
                *vi += 1;
                *off = 0;
            },
            EdgeCursor::Materialized { edges, pos } => {
                let e = edges.get(*pos).copied();
                if e.is_some() {
                    *pos += 1;
                }
                e
            }
        };
        if e.is_some() {
            self.emitted += 1;
        }
        e
    }

    /// Fills `out` with the next up-to-`max_len` stream elements
    /// (clearing it first) and returns how many were produced; 0 means
    /// end of stream. `max_len = 0` is treated as 1 so the cursor always
    /// makes progress.
    pub fn next_chunk(&mut self, max_len: usize, out: &mut Vec<Edge>) -> usize {
        out.clear();
        let max_len = max_len.max(1);
        while out.len() < max_len {
            match self.next_edge() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out.len()
    }
}

/// Replays a [`Graph`] as a fully materialized edge stream (the vertex-cut
/// input model). The ordering logic lives in [`EdgeStreamSource`]; this
/// adapter buffers the whole permutation up front, which keeps
/// [`as_slice`](EdgeStream::as_slice) available and serves as the
/// materialized baseline in the `ingest` bench.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    edges: Vec<Edge>,
    pos: usize,
}

impl EdgeStream {
    /// Creates an edge stream over `g` in the given arrival order.
    pub fn new(g: &Graph, order: StreamOrder) -> Self {
        let mut source = EdgeStreamSource::new(g, order);
        let mut edges = Vec::with_capacity(source.len());
        while let Some(e) = source.next_edge() {
            edges.push(e);
        }
        edges.shrink_to_fit();
        EdgeStream { edges, pos: 0 }
    }

    /// Number of elements in the stream (`|E|`).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Restarts the stream from the beginning with the same order.
    pub fn restart(&mut self) {
        self.pos = 0;
    }

    /// Borrow the underlying edge order (used by parallel-ingest tests).
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }
}

impl Iterator for EdgeStream {
    type Item = Edge;

    fn next(&mut self) -> Option<Self::Item> {
        let e = *self.edges.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.edges.len() - self.pos;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph() -> Graph {
        GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build()
    }

    fn all_orders() -> Vec<StreamOrder> {
        vec![
            StreamOrder::Natural,
            StreamOrder::Random { seed: 7 },
            StreamOrder::Bfs,
            StreamOrder::Dfs,
            StreamOrder::BfsFrom { start: 2 },
            StreamOrder::DfsFrom { start: 3 },
        ]
    }

    #[test]
    fn vertex_stream_visits_every_vertex_once() {
        let g = path_graph();
        let mut seen: Vec<VertexId> =
            VertexStream::new(&g, StreamOrder::Random { seed: 11 }).map(|r| r.vertex).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn vertex_stream_neighborhoods_are_undirected() {
        let g = path_graph();
        let rec = VertexStream::new(&g, StreamOrder::Natural)
            .find(|r| r.vertex == 1)
            .expect("vertex 1 in stream");
        assert_eq!(rec.neighbors, vec![0, 2]);
        assert_eq!(rec.out_neighbors, vec![2]);
    }

    #[test]
    fn edge_stream_covers_all_edges() {
        let g = path_graph();
        let mut edges: Vec<Edge> = EdgeStream::new(&g, StreamOrder::Random { seed: 5 }).collect();
        edges.sort_unstable();
        assert_eq!(edges, g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn bfs_order_starts_at_root_and_respects_layers() {
        let g =
            GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(1, 3).add_edge(2, 4).build();
        let order = vertex_order(&g, StreamOrder::Bfs);
        assert_eq!(order[0], 0);
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
    }

    #[test]
    fn dfs_order_differs_from_bfs_on_tree() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(1, 4)
            .add_edge(2, 5)
            .add_edge(2, 6)
            .build();
        let bfs = vertex_order(&g, StreamOrder::Bfs);
        let dfs = vertex_order(&g, StreamOrder::Dfs);
        assert_ne!(bfs, dfs);
        assert_eq!(bfs.len(), dfs.len());
    }

    #[test]
    fn traversal_covers_disconnected_components() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(2, 3).build();
        let order = vertex_order(&g, StreamOrder::Bfs);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let g = path_graph();
        let a = vertex_order(&g, StreamOrder::Random { seed: 1 });
        let b = vertex_order(&g, StreamOrder::Random { seed: 1 });
        let c = vertex_order(&g, StreamOrder::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn restart_replays_identical_stream() {
        let g = path_graph();
        let mut s = VertexStream::new(&g, StreamOrder::Random { seed: 4 });
        let first: Vec<VertexId> = s.by_ref().map(|r| r.vertex).collect();
        s.restart();
        let second: Vec<VertexId> = s.map(|r| r.vertex).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn edge_stream_size_hint_tracks_position() {
        let g = path_graph();
        let mut s = EdgeStream::new(&g, StreamOrder::Natural);
        assert_eq!(s.size_hint(), (3, Some(3)));
        s.next();
        assert_eq!(s.size_hint(), (2, Some(2)));
    }

    #[test]
    fn start_zero_traversals_match_unit_variants() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 4)
            .add_edge(5, 6)
            .build();
        assert_eq!(
            vertex_order(&g, StreamOrder::Bfs),
            vertex_order(&g, StreamOrder::BfsFrom { start: 0 })
        );
        assert_eq!(
            vertex_order(&g, StreamOrder::Dfs),
            vertex_order(&g, StreamOrder::DfsFrom { start: 0 })
        );
    }

    #[test]
    fn configurable_start_is_deterministic_and_complete() {
        let g =
            GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(4, 5).build();
        for start in 0..6u32 {
            let a = vertex_order(&g, StreamOrder::BfsFrom { start });
            let b = vertex_order(&g, StreamOrder::BfsFrom { start });
            assert_eq!(a, b, "same order twice for start {start}");
            assert_eq!(a[0], start, "traversal begins at the configured root");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>(), "covers every vertex");
        }
        // Distinct starts produce distinct permutations on this graph.
        assert_ne!(
            vertex_order(&g, StreamOrder::BfsFrom { start: 0 }),
            vertex_order(&g, StreamOrder::BfsFrom { start: 3 }),
        );
    }

    #[test]
    fn out_of_range_start_falls_back_to_natural_roots() {
        let g = path_graph();
        let order = vertex_order(&g, StreamOrder::BfsFrom { start: 99 });
        assert_eq!(order, vertex_order(&g, StreamOrder::Bfs));
    }

    #[test]
    fn chunked_vertex_source_matches_iterator_in_every_order() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .add_edge(1, 4)
            .add_edge(5, 6)
            .build();
        for order in all_orders() {
            let whole: Vec<VertexRecord> = VertexStream::new(&g, order).collect();
            for chunk_len in [1usize, 2, 3, 64] {
                let mut source = VertexStreamSource::new(&g, order);
                let mut chunk = Vec::new();
                let mut got = Vec::new();
                while source.next_chunk(chunk_len, &mut chunk) > 0 {
                    got.extend(chunk.iter().cloned());
                }
                assert_eq!(got, whole, "order {order:?} chunk {chunk_len}");
            }
        }
    }

    #[test]
    fn chunked_edge_source_matches_iterator_in_every_order() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 0)
            .add_edge(5, 6)
            .build();
        for order in all_orders() {
            let whole: Vec<Edge> = EdgeStream::new(&g, order).collect();
            for chunk_len in [1usize, 2, 5, 64] {
                let mut source = EdgeStreamSource::new(&g, order);
                let mut chunk = Vec::new();
                let mut got = Vec::new();
                while source.next_chunk(chunk_len, &mut chunk) > 0 {
                    got.extend(chunk.iter().copied());
                }
                assert_eq!(got, whole, "order {order:?} chunk {chunk_len}");
            }
        }
    }

    #[test]
    fn edge_source_restart_replays_and_tracks_remaining() {
        let g = path_graph();
        let mut s = EdgeStreamSource::new(&g, StreamOrder::Bfs);
        assert_eq!(s.remaining(), 3);
        let first: Vec<Edge> = std::iter::from_fn(|| s.next_edge()).collect();
        assert_eq!(s.remaining(), 0);
        s.restart();
        assert_eq!(s.remaining(), 3);
        let second: Vec<Edge> = std::iter::from_fn(|| s.next_edge()).collect();
        assert_eq!(first, second);
    }
}
