//! Streaming input models (§3 of the paper).
//!
//! A streaming partitioner is "sequentially presented a stream
//! `S = <a1, a2, ...>` of graph G where `ai` is either an edge `(u, v)` or
//! a vertex `u` and its neighbors `N(u)`". This module replays an
//! immutable [`Graph`] as either stream, in a configurable arrival order.
//!
//! Stream order matters: §4.2.2 notes that PowerGraph's greedy vertex-cut
//! "is sensitive to stream orders and might result in a single partition
//! in case of breadth-first traversal order", which HDRF's balance term
//! avoids. The [`StreamOrder`] options let the reproduction's ablation
//! benches exercise exactly that.

use crate::csr::Graph;
use crate::sampling::{seeded_rng, shuffle};
use crate::types::{Edge, VertexId};
use serde::{Deserialize, Serialize};

/// Arrival order of stream elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamOrder {
    /// The natural order of the dataset (vertex id / CSR order).
    Natural,
    /// Uniformly random permutation, seeded.
    Random {
        /// RNG seed for the permutation.
        seed: u64,
    },
    /// Breadth-first traversal from vertex 0 (unreached vertices appended
    /// in natural order afterwards, as in the original LDG evaluation).
    Bfs,
    /// Depth-first traversal from vertex 0 (unreached vertices appended).
    Dfs,
}

impl Default for StreamOrder {
    fn default() -> Self {
        StreamOrder::Random { seed: 0x5347_5021 }
    }
}

/// Computes a vertex visit order over the undirected structure of `g`.
fn vertex_order(g: &Graph, order: StreamOrder) -> Vec<VertexId> {
    let n = g.num_vertices();
    match order {
        StreamOrder::Natural => (0..n as VertexId).collect(),
        StreamOrder::Random { seed } => {
            let mut v: Vec<VertexId> = (0..n as VertexId).collect();
            shuffle(&mut v, &mut seeded_rng(seed));
            v
        }
        StreamOrder::Bfs => traversal_order(g, true),
        StreamOrder::Dfs => traversal_order(g, false),
    }
}

fn traversal_order(g: &Graph, bfs: bool) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut frontier: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
    for root in 0..n as VertexId {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        frontier.push_back(root);
        while let Some(v) = if bfs { frontier.pop_front() } else { frontier.pop_back() } {
            out.push(v);
            for w in g.undirected_neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    frontier.push_back(w);
                }
            }
        }
    }
    out
}

/// A single vertex-stream element: a vertex with its full (undirected)
/// neighbourhood, the input model of LDG/FENNEL (§4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRecord {
    /// The arriving vertex.
    pub vertex: VertexId,
    /// Its complete neighbourhood `N(u)` over the undirected structure
    /// (out- and in-neighbours, deduplicated, sorted).
    pub neighbors: Vec<VertexId>,
    /// Out-neighbours only — needed when deriving the Appendix-B
    /// edge-disjoint placement (all out-edges follow the source).
    pub out_neighbors: Vec<VertexId>,
}

/// Replays a [`Graph`] as a vertex stream (adjacency-list loading model).
#[derive(Debug, Clone)]
pub struct VertexStream<'g> {
    graph: &'g Graph,
    order: Vec<VertexId>,
    pos: usize,
}

impl<'g> VertexStream<'g> {
    /// Creates a vertex stream over `g` in the given arrival order.
    pub fn new(g: &'g Graph, order: StreamOrder) -> Self {
        VertexStream { graph: g, order: vertex_order(g, order), pos: 0 }
    }

    /// Total number of elements in the stream (`|V|`).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Restarts the stream from the beginning with the same order — the
    /// primitive behind the re-streaming variants (re-LDG / re-FENNEL).
    pub fn restart(&mut self) {
        self.pos = 0;
    }
}

impl<'g> Iterator for VertexStream<'g> {
    type Item = VertexRecord;

    fn next(&mut self) -> Option<Self::Item> {
        let v = *self.order.get(self.pos)?;
        self.pos += 1;
        let mut neighbors: Vec<VertexId> = self.graph.undirected_neighbors(v).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        Some(VertexRecord {
            vertex: v,
            neighbors,
            out_neighbors: self.graph.out_neighbors(v).to_vec(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.order.len() - self.pos;
        (rem, Some(rem))
    }
}

/// Replays a [`Graph`] as an edge stream (the vertex-cut input model).
///
/// For `StreamOrder::Bfs`/`Dfs` the edges arrive grouped by the traversal
/// order of their source vertex, which is the adversarial order for
/// PowerGraph-style greedy placement.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    edges: Vec<Edge>,
    pos: usize,
}

impl EdgeStream {
    /// Creates an edge stream over `g` in the given arrival order.
    pub fn new(g: &Graph, order: StreamOrder) -> Self {
        let mut edges: Vec<Edge> = match order {
            StreamOrder::Natural => g.edges().collect(),
            StreamOrder::Random { seed } => {
                let mut e: Vec<Edge> = g.edges().collect();
                shuffle(&mut e, &mut seeded_rng(seed ^ 0x9E37_79B9));
                e
            }
            StreamOrder::Bfs | StreamOrder::Dfs => {
                let vo = vertex_order(g, order);
                let mut e = Vec::with_capacity(g.num_edges());
                for v in vo {
                    e.extend(g.out_neighbors(v).iter().map(|&w| Edge::new(v, w)));
                }
                e
            }
        };
        edges.shrink_to_fit();
        EdgeStream { edges, pos: 0 }
    }

    /// Number of elements in the stream (`|E|`).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Restarts the stream from the beginning with the same order.
    pub fn restart(&mut self) {
        self.pos = 0;
    }

    /// Borrow the underlying edge order (used by parallel-ingest tests).
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }
}

impl Iterator for EdgeStream {
    type Item = Edge;

    fn next(&mut self) -> Option<Self::Item> {
        let e = *self.edges.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.edges.len() - self.pos;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph() -> Graph {
        GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build()
    }

    #[test]
    fn vertex_stream_visits_every_vertex_once() {
        let g = path_graph();
        let mut seen: Vec<VertexId> =
            VertexStream::new(&g, StreamOrder::Random { seed: 11 }).map(|r| r.vertex).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn vertex_stream_neighborhoods_are_undirected() {
        let g = path_graph();
        let rec = VertexStream::new(&g, StreamOrder::Natural)
            .find(|r| r.vertex == 1)
            .expect("vertex 1 in stream");
        assert_eq!(rec.neighbors, vec![0, 2]);
        assert_eq!(rec.out_neighbors, vec![2]);
    }

    #[test]
    fn edge_stream_covers_all_edges() {
        let g = path_graph();
        let mut edges: Vec<Edge> = EdgeStream::new(&g, StreamOrder::Random { seed: 5 }).collect();
        edges.sort_unstable();
        assert_eq!(edges, g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn bfs_order_starts_at_root_and_respects_layers() {
        let g =
            GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(1, 3).add_edge(2, 4).build();
        let order = vertex_order(&g, StreamOrder::Bfs);
        assert_eq!(order[0], 0);
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
    }

    #[test]
    fn dfs_order_differs_from_bfs_on_tree() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(1, 4)
            .add_edge(2, 5)
            .add_edge(2, 6)
            .build();
        let bfs = vertex_order(&g, StreamOrder::Bfs);
        let dfs = vertex_order(&g, StreamOrder::Dfs);
        assert_ne!(bfs, dfs);
        assert_eq!(bfs.len(), dfs.len());
    }

    #[test]
    fn traversal_covers_disconnected_components() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(2, 3).build();
        let order = vertex_order(&g, StreamOrder::Bfs);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let g = path_graph();
        let a = vertex_order(&g, StreamOrder::Random { seed: 1 });
        let b = vertex_order(&g, StreamOrder::Random { seed: 1 });
        let c = vertex_order(&g, StreamOrder::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn restart_replays_identical_stream() {
        let g = path_graph();
        let mut s = VertexStream::new(&g, StreamOrder::Random { seed: 4 });
        let first: Vec<VertexId> = s.by_ref().map(|r| r.vertex).collect();
        s.restart();
        let second: Vec<VertexId> = s.map(|r| r.vertex).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn edge_stream_size_hint_tracks_position() {
        let g = path_graph();
        let mut s = EdgeStream::new(&g, StreamOrder::Natural);
        assert_eq!(s.size_hint(), (3, Some(3)));
        s.next();
        assert_eq!(s.size_hint(), (2, Some(2)));
    }
}
