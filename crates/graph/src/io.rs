//! Plain-text edge-list persistence.
//!
//! The original study streams SNAP/WebGraph edge lists from disk during
//! loading; the reproduction uses the same whitespace-separated
//! `src dst` format (one edge per line, `#`-prefixed comment lines
//! ignored) so real datasets can be dropped in if available.

use crate::csr::Graph;
use crate::types::Edge;
use crate::GraphBuilder;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid `src dst` pair.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an edge list from any buffered reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (src, dst) = match (parts.next(), parts.next()) {
            (Some(s), Some(d)) => (s, d),
            _ => return Err(IoError::Parse { line: idx + 1, content: trimmed.to_string() }),
        };
        let src: u32 = src
            .parse()
            .map_err(|_| IoError::Parse { line: idx + 1, content: trimmed.to_string() })?;
        let dst: u32 = dst
            .parse()
            .map_err(|_| IoError::Parse { line: idx + 1, content: trimmed.to_string() })?;
        builder.push_edge(src, dst);
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes a graph as an edge list with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# sgp edge list: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for Edge { src, dst } in g.edges() {
        writeln!(w, "{src} {dst}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(5, 0).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n% matrix-market style comment\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1\nnot-a-number 3\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_column_is_parse_error() {
        let text = "0\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(IoError::Parse { line: 1, .. })));
    }

    #[test]
    fn tabs_and_extra_columns_accepted() {
        let text = "0\t1\tweight=3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let g = GraphBuilder::new().add_edge(2, 3).add_edge(3, 4).build();
        let dir = std::env::temp_dir().join("sgp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(g, back);
    }
}
