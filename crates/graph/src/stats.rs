//! Dataset characteristics à la the paper's Table 3.

use crate::csr::Graph;
use serde::{Deserialize, Serialize};

/// Structural classification used in Table 3's "Type" column and by the
/// decision tree of §6.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphClass {
    /// Heavy-tailed degree distribution (Twitter, LDBC SNB).
    HeavyTailed,
    /// Power-law degree distribution (UK2007-05 web graph).
    PowerLaw,
    /// Low-degree regular structure (USA-Road).
    LowDegree,
}

impl std::fmt::Display for GraphClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(match self {
            GraphClass::HeavyTailed => "Heavy Tailed",
            GraphClass::PowerLaw => "Power-law",
            GraphClass::LowDegree => "Low-degree",
        })
    }
}

/// Summary statistics for a graph (one row of Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree `m / n`.
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Ratio max_degree / avg_degree — the skew indicator the decision
    /// tree branches on.
    pub skew: f64,
    /// Gini coefficient of the total-degree distribution in [0, 1]
    /// (0 = perfectly regular, → 1 = extremely skewed).
    pub degree_gini: f64,
    /// R² of the least-squares line through the log-log degree-rank
    /// plot. A *clean* power law (web graphs like UK2007-05) fits a
    /// straight line (R² → 1); heavy-tailed social graphs deviate —
    /// curvature in the body (Twitter/R-MAT) or a capped tail (LDBC
    /// SNB) pulls R² down. This is the paper's "Power-law" vs "Heavy
    /// Tailed" distinction made measurable.
    pub powerlaw_fit_r2: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let avg = g.avg_degree();
        let max = g.max_degree();
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let gini = gini(&degrees);
        let r2 = powerlaw_fit_r2(&degrees);
        GraphStats {
            vertices: n,
            edges: m,
            avg_degree: avg,
            max_degree: max,
            skew: if avg > 0.0 { max as f64 / (2.0 * avg) } else { 0.0 },
            degree_gini: gini,
            powerlaw_fit_r2: r2,
        }
    }

    /// Classifies the graph for the §6.4 decision tree:
    /// * **Low-degree** — bounded max degree or negligible skew (road
    ///   networks);
    /// * **Power-law** — skewed *and* the degree-rank plot is a clean
    ///   straight line in log-log space (web graphs);
    /// * **Heavy-tailed** — skewed with a bent rank plot (social
    ///   networks).
    pub fn classify(&self) -> GraphClass {
        if self.max_degree <= 16 || self.skew < 3.0 {
            GraphClass::LowDegree
        } else if self.powerlaw_fit_r2 > 0.95 {
            GraphClass::PowerLaw
        } else {
            GraphClass::HeavyTailed
        }
    }
}

/// R² of the least-squares fit of `ln(degree)` against `ln(rank)` over
/// the non-zero degrees (rank 1 = highest degree). 1.0 means a perfect
/// power law; sequences shorter than 3 return 0.0.
fn powerlaw_fit_r2(sorted_ascending: &[usize]) -> f64 {
    let degs: Vec<f64> =
        sorted_ascending.iter().rev().filter(|&&d| d > 0).map(|&d| d as f64).collect();
    if degs.len() < 3 {
        return 0.0;
    }
    let n = degs.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy, mut syy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (i, &d) in degs.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = d.ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
    }
    let cov = n * sxy - sx * sy;
    let varx = n * sxx - sx * sx;
    let vary = n * syy - sy * sy;
    if varx <= 0.0 || vary <= 0.0 {
        return 0.0; // constant degrees: no power-law shape at all
    }
    (cov * cov) / (varx * vary)
}

/// Gini coefficient of a sorted, non-negative sequence.
fn gini(sorted: &[usize]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = sorted.iter().map(|&d| d as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut weighted = 0.0f64;
    for (i, &d) in sorted.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64;
    }
    weighted / (n as f64 * total)
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg={:.1} max={} ({})",
            self.vertices,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.classify()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        powerlaw_cm, road_grid, snb_social, PowerLawConfig, RoadConfig, SnbConfig,
    };
    use crate::GraphBuilder;

    #[test]
    fn stats_of_simple_graph() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(0, 3).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 3);
    }

    #[test]
    fn gini_zero_for_regular() {
        assert!((gini(&[2, 2, 2, 2]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn gini_high_for_star() {
        let mut degs = vec![1usize; 99];
        degs.push(99);
        degs.sort_unstable();
        assert!(gini(&degs) > 0.4);
    }

    #[test]
    fn gini_empty_is_zero() {
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn road_classifies_low_degree() {
        let g = road_grid(RoadConfig { width: 30, height: 30, ..RoadConfig::default() });
        assert_eq!(GraphStats::of(&g).classify(), GraphClass::LowDegree);
    }

    #[test]
    fn powerlaw_classifies_skewed() {
        let g = powerlaw_cm(PowerLawConfig {
            vertices: 3000,
            avg_degree: 10.0,
            exponent: 0.8,
            seed: 7,
        });
        let c = GraphStats::of(&g).classify();
        assert_ne!(c, GraphClass::LowDegree, "power-law graph must not classify as low-degree");
    }

    #[test]
    fn powerlaw_fit_r2_perfect_on_exact_power_law() {
        let degs: Vec<usize> =
            (1..=200usize).map(|r| (1000.0 / (r as f64).powf(0.8)).round() as usize).collect();
        let mut sorted = degs;
        sorted.sort_unstable();
        assert!(powerlaw_fit_r2(&sorted) > 0.98);
    }

    #[test]
    fn powerlaw_fit_r2_low_on_regular_degrees() {
        assert_eq!(powerlaw_fit_r2(&[3, 3, 3, 3, 3]), 0.0);
        assert_eq!(powerlaw_fit_r2(&[1]), 0.0);
    }

    #[test]
    fn snb_classifies_heavy_tailed_not_low_degree() {
        let g = snb_social(SnbConfig { persons: 3000, communities: 30, ..SnbConfig::default() });
        assert_ne!(GraphStats::of(&g).classify(), GraphClass::LowDegree);
    }
}
