//! Incremental construction of [`Graph`]s from edge lists.

use crate::csr::Graph;
use crate::types::{Edge, VertexId};

/// Builds a [`Graph`] from an arbitrary sequence of directed edges.
///
/// The builder tolerates duplicate edges and self-loops according to its
/// configuration; the paper's datasets are simple directed graphs, so the
/// default deduplicates and drops self-loops (matching how the original
/// study's loaders ingest SNAP/WebGraph edge lists).
///
/// # Examples
///
/// ```
/// use sgp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .add_edge(0, 1)
///     .add_edge(1, 2)
///     .add_edge(2, 0)
///     .build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_neighbors(0), &[1]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_vertices: usize,
    keep_self_loops: bool,
    keep_duplicates: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// Creates an empty builder with default policies (no self-loops, no
    /// duplicate edges).
    pub fn new() -> Self {
        GraphBuilder {
            edges: Vec::new(),
            min_vertices: 0,
            keep_self_loops: false,
            keep_duplicates: false,
        }
    }

    /// Creates a builder with capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        let mut b = Self::new();
        b.edges.reserve(edges);
        b
    }

    /// Keep self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Keep duplicate (multi-)edges instead of deduplicating (default: dedup).
    pub fn keep_duplicates(mut self, keep: bool) -> Self {
        self.keep_duplicates = keep;
        self
    }

    /// Ensures the built graph has at least `n` vertices even if some have
    /// no incident edges (isolated vertices still need partition
    /// placements in the edge-cut model).
    pub fn ensure_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds a directed edge `src -> dst`.
    pub fn add_edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.edges.push(Edge::new(src, dst));
        self
    }

    /// Adds a directed edge in place (non-consuming variant for loops).
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push(Edge::new(src, dst));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges currently staged (before dedup/self-loop policy).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let GraphBuilder { mut edges, min_vertices, keep_self_loops, keep_duplicates } = self;
        if !keep_self_loops {
            edges.retain(|e| !e.is_loop());
        }
        if !keep_duplicates {
            edges.sort_unstable();
            edges.dedup();
        }
        let n = edges
            .iter()
            .map(|e| e.src.max(e.dst) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(min_vertices);
        Graph::from_sorted_edges(n, edges, keep_duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_by_default() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 1).add_edge(1, 0).build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_drops_self_loops_by_default() {
        let g = GraphBuilder::new().add_edge(0, 0).add_edge(0, 1).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn builder_keeps_self_loops_when_asked() {
        let g = GraphBuilder::new().keep_self_loops(true).add_edge(0, 0).add_edge(0, 1).build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_keeps_duplicates_when_asked() {
        let g = GraphBuilder::new().keep_duplicates(true).add_edge(0, 1).add_edge(0, 1).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn builder_ensure_vertices_pads_isolated() {
        let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
        assert_eq!(g.in_degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
