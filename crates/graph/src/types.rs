//! Fundamental identifiers and edge types shared across the workspace.

use serde::{Deserialize, Serialize};

/// A vertex identifier.
///
/// Vertices are dense integers in `0..n`; generators and the
/// [`crate::GraphBuilder`] remap arbitrary labels into this range. `u32`
/// comfortably covers the laptop-scale stand-ins for the paper's datasets
/// while keeping the CSR arrays compact (see the type-size guidance in the
/// Rust performance literature).
pub type VertexId = u32;

/// A directed edge `(src, dst)`.
///
/// The paper's graphs are directed (PageRank gathers along in-edges;
/// WCC treats edges as undirected at the algorithm level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
}

impl Edge {
    /// Creates a new directed edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Returns the edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { src: self.dst, dst: self.src }
    }

    /// Returns the canonical undirected form (smaller endpoint first).
    #[inline]
    pub fn canonical(self) -> Self {
        if self.src <= self.dst {
            self
        } else {
            self.reversed()
        }
    }

    /// True if both endpoints are the same vertex.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn edge_canonical_orders_endpoints() {
        assert_eq!(Edge::new(9, 2).canonical(), Edge::new(2, 9));
        assert_eq!(Edge::new(2, 9).canonical(), Edge::new(2, 9));
        assert_eq!(Edge::new(4, 4).canonical(), Edge::new(4, 4));
    }

    #[test]
    fn edge_loop_detection() {
        assert!(Edge::new(5, 5).is_loop());
        assert!(!Edge::new(5, 6).is_loop());
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (1u32, 2u32).into();
        assert_eq!(e, Edge::new(1, 2));
    }

    #[test]
    fn edge_display() {
        assert_eq!(Edge::new(1, 2).to_string(), "1 -> 2");
    }
}
