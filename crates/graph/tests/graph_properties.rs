//! Property-based tests of the graph substrate: CSR invariants, stream
//! completeness, generator statistics, and I/O round-trips.

use proptest::prelude::*;
use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
use sgp_graph::{Edge, Graph, GraphBuilder, GraphStats, StreamOrder, VertexStream};

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..50)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)))
}

fn build(n: usize, pairs: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new().ensure_vertices(n);
    for &(s, d) in pairs {
        b.push_edge(s, d);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// In-adjacency is exactly the transpose of out-adjacency.
    #[test]
    fn csr_in_is_transpose_of_out((n, pairs) in arb_edges()) {
        let g = build(n, &pairs);
        for e in g.edges() {
            prop_assert!(g.in_neighbors(e.dst).contains(&e.src));
        }
        let m_in: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(m_in, g.num_edges());
    }

    /// Degree sums are consistent: Σ out-degree = Σ in-degree = m.
    #[test]
    fn degree_sums_match((n, pairs) in arb_edges()) {
        let g = build(n, &pairs);
        let out: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let inn: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, g.num_edges());
        prop_assert_eq!(inn, g.num_edges());
    }

    /// Builder is idempotent: rebuilding from the built edge list yields
    /// the same graph.
    #[test]
    fn builder_idempotent((n, pairs) in arb_edges()) {
        let g = build(n, &pairs);
        let g2 = GraphBuilder::new()
            .extend_edges(g.edges())
            .ensure_vertices(n)
            .build();
        prop_assert_eq!(&g, &g2);
    }

    /// Every stream order delivers every vertex exactly once with its
    /// full neighbourhood.
    #[test]
    fn vertex_stream_complete((n, pairs) in arb_edges(), seed in any::<u64>()) {
        let g = build(n, &pairs);
        for order in [StreamOrder::Natural, StreamOrder::Random { seed }, StreamOrder::Bfs, StreamOrder::Dfs] {
            let mut seen = vec![0usize; n];
            for rec in VertexStream::new(&g, order) {
                seen[rec.vertex as usize] += 1;
                // Neighbourhood must be the undirected adjacency, deduped.
                let mut expected: Vec<u32> = g.undirected_neighbors(rec.vertex).collect();
                expected.sort_unstable();
                expected.dedup();
                prop_assert_eq!(&rec.neighbors, &expected);
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "{:?}", order);
        }
    }

    /// Text I/O round-trips every graph bit-for-bit.
    #[test]
    fn io_roundtrip((n, pairs) in arb_edges()) {
        let g = build(n, &pairs);
        let mut buf = Vec::new();
        sgp_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let back = sgp_graph::io::read_edge_list(&buf[..]).unwrap();
        // Isolated tail vertices are not representable in an edge list;
        // compare edges and active prefix.
        prop_assert_eq!(g.edges().collect::<Vec<Edge>>(), back.edges().collect::<Vec<Edge>>());
    }

    /// `to_undirected` is an involution on already-symmetric graphs.
    #[test]
    fn undirected_involution((n, pairs) in arb_edges()) {
        let g = build(n, &pairs).to_undirected();
        let g2 = g.to_undirected();
        prop_assert_eq!(&g, &g2);
    }

    /// Stats are internally consistent on arbitrary graphs.
    #[test]
    fn stats_consistent((n, pairs) in arb_edges()) {
        let g = build(n, &pairs);
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.vertices, g.num_vertices());
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert!((0.0..=1.0).contains(&s.degree_gini));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.powerlaw_fit_r2));
    }
}

#[test]
fn erdos_renyi_edge_count_concentrates() {
    // Non-proptest statistical check: requested m minus dedup losses.
    let g = erdos_renyi(ErdosRenyiConfig { vertices: 500, edges: 4000, seed: 77 });
    assert!(g.num_edges() > 3800);
}

#[test]
fn edge_stream_respects_bfs_grouping() {
    // Under BFS order, all out-edges of an earlier-visited source appear
    // before those of a later-visited source.
    let g = GraphBuilder::new()
        .add_edge(0, 1)
        .add_edge(0, 2)
        .add_edge(1, 3)
        .add_edge(2, 4)
        .add_edge(3, 5)
        .build();
    let edges: Vec<Edge> = sgp_graph::EdgeStream::new(&g, StreamOrder::Bfs).collect();
    let first_pos = |src: u32| edges.iter().position(|e| e.src == src).unwrap();
    assert!(first_pos(0) < first_pos(1));
    assert!(first_pos(1) < first_pos(3));
}
