//! Cost model and run reports.
//!
//! The paper measures three runtime quantities on PowerLyra: total
//! network communication (Fig. 1), the distribution of per-worker
//! computation time (Fig. 4), and end-to-end execution time (Fig. 3).
//! The engine produces all three from first principles:
//!
//! * every gather/scatter edge operation and every apply costs a fixed
//!   number of simulated nanoseconds on its machine;
//! * every message costs its wire size ([`crate::wire`]) on both the
//!   sender's and receiver's NIC, with per-machine bandwidth;
//! * an iteration ends at a synchronous barrier, so its wall time is the
//!   *maximum* over machines of compute + network time, plus a barrier
//!   latency.

use serde::{Deserialize, Serialize};

/// Simulated hardware constants. Defaults approximate the paper's
/// m5.2xlarge workers (8 cores, 10 Gb/s NIC); only *relative* results
/// matter for the reproduction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Nanoseconds per gather/scatter edge operation.
    pub ns_per_edge_op: f64,
    /// Nanoseconds per apply (vertex) operation.
    pub ns_per_apply: f64,
    /// NIC bandwidth per machine, bytes per second (full duplex).
    pub bytes_per_second: f64,
    /// Per-iteration synchronous barrier latency, nanoseconds.
    pub barrier_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_edge_op: 25.0,
            ns_per_apply: 60.0,
            // Effective application-level goodput, not line rate: GAS
            // sync messages are tiny (16-24 B), so a 10 Gb/s NIC
            // delivers a fraction of its bandwidth to the engine.
            bytes_per_second: 3.0e8,
            // Fast in-memory barrier. Kept small relative to per-machine
            // work so the simulated cluster is compute/network-bound at
            // laptop-scale graphs, as the paper's clusters are at
            // billion-edge scale.
            barrier_ns: 20_000.0,
        }
    }
}

/// Statistics for a single superstep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationStats {
    /// Number of active vertices at the start of the iteration.
    pub active_vertices: usize,
    /// Gather-partial messages (mirror → master).
    pub gather_messages: u64,
    /// Vertex-update messages (master → mirror).
    pub update_messages: u64,
    /// Total bytes moved this iteration (headers + payloads).
    pub network_bytes: u64,
    /// Simulated compute nanoseconds per machine this iteration.
    pub machine_compute_ns: Vec<f64>,
    /// Simulated bytes sent+received per machine this iteration.
    pub machine_bytes: Vec<u64>,
    /// Simulated wall-clock nanoseconds of the iteration (barrier model).
    pub wall_ns: f64,
}

impl IterationStats {
    /// Total messages this iteration.
    pub fn messages(&self) -> u64 {
        self.gather_messages + self.update_messages
    }
}

/// Fault accounting of a run executed under a
/// [`FaultPlan`](sgp_fault::FaultPlan) (pause-and-recover model: the
/// computed result is identical to the healthy run; only the cost
/// accounting changes — see `run_program_with_faults`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Crash events charged to the run.
    pub crashes: usize,
    /// Master vertices restored from a live mirror's copy.
    pub recovered_vertices: usize,
    /// Master vertices with no mirror, recomputed from scratch.
    pub recomputed_vertices: usize,
    /// Bytes shipped to restore mirrored state.
    pub recovery_bytes: u64,
    /// Simulated nanoseconds spent on crash recovery (state transfer +
    /// recomputation), included in `total_wall_ns`.
    pub recovery_ns: f64,
    /// Extra simulated nanoseconds caused by straggler slowdowns,
    /// included in `total_wall_ns`.
    pub straggler_extra_ns: f64,
}

/// Full report of one engine run — the raw material for Figures 1, 3, 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Program name.
    pub program: &'static str,
    /// Number of machines.
    pub machines: usize,
    /// Replication factor of the placement the run used.
    pub replication_factor: f64,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
    /// Cumulative compute nanoseconds per machine (Fig. 4's quantity).
    pub machine_compute_ns: Vec<f64>,
    /// Simulated end-to-end execution time in nanoseconds (Fig. 3's
    /// quantity; excludes partitioning time, as in the paper §5.1.4).
    /// Includes recovery and straggler time when `fault` is set.
    pub total_wall_ns: f64,
    /// Fault accounting; `None` for healthy runs (so healthy report
    /// JSON is unchanged by the robustness subsystem).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault: Option<FaultSummary>,
}

impl RunReport {
    /// Total messages across all iterations.
    pub fn total_messages(&self) -> u64 {
        self.iterations.iter().map(|i| i.messages()).sum()
    }

    /// Total network bytes across all iterations (Fig. 1's y-axis).
    pub fn total_network_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.network_bytes).sum()
    }

    /// Number of supersteps executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Simulated execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_wall_ns / 1e9
    }

    /// Five-number summary (min, p25, median, p75, max) of per-machine
    /// compute time in seconds — exactly the box lines of Fig. 4.
    pub fn compute_time_distribution(&self) -> [f64; 5] {
        let mut times: Vec<f64> = self.machine_compute_ns.iter().map(|&t| t / 1e9).collect();
        // sgp-lint: allow(no-panic-in-lib): machine_compute_ns accumulates finite per-op costs, so partial_cmp is total here
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        five_number_summary(&times)
    }
}

/// Five-number summary of a sorted sample.
pub fn five_number_summary(sorted: &[f64]) -> [f64; 5] {
    if sorted.is_empty() {
        return [0.0; 5];
    }
    let q = |frac: f64| {
        let pos = frac * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    };
    [sorted[0], q(0.25), q(0.5), q(0.75), sorted[sorted.len() - 1]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter_stats(gather: u64, update: u64, bytes: u64) -> IterationStats {
        IterationStats {
            active_vertices: 10,
            gather_messages: gather,
            update_messages: update,
            network_bytes: bytes,
            machine_compute_ns: vec![100.0, 200.0],
            machine_bytes: vec![bytes / 2, bytes / 2],
            wall_ns: 1000.0,
        }
    }

    #[test]
    fn report_totals_accumulate() {
        let r = RunReport {
            program: "test",
            machines: 2,
            replication_factor: 1.5,
            iterations: vec![iter_stats(5, 3, 100), iter_stats(2, 1, 50)],
            machine_compute_ns: vec![300.0, 400.0],
            total_wall_ns: 2000.0,
            fault: None,
        };
        assert_eq!(r.total_messages(), 11);
        assert_eq!(r.total_network_bytes(), 150);
        assert_eq!(r.num_iterations(), 2);
        assert!((r.total_seconds() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn five_number_summary_basics() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(five_number_summary(&[]), [0.0; 5]);
        assert_eq!(five_number_summary(&[7.0]), [7.0; 5]);
    }

    #[test]
    fn distribution_sorted_from_unsorted_machines() {
        let r = RunReport {
            program: "test",
            machines: 3,
            replication_factor: 1.0,
            iterations: vec![],
            machine_compute_ns: vec![3e9, 1e9, 2e9],
            total_wall_ns: 0.0,
            fault: None,
        };
        let d = r.compute_time_distribution();
        assert_eq!(d[0], 1.0);
        assert_eq!(d[4], 3.0);
        assert_eq!(d[2], 2.0);
    }
}
