//! # sgp-engine
//!
//! A PowerLyra-like distributed graph-analytics engine **simulator** for
//! the SGP reproduction: the substrate behind the paper's offline
//! experiments (Figures 1, 3, 4, 13).
//!
//! The engine executes real Gather–Apply–Scatter vertex programs
//! (PageRank, WCC, SSSP — [`apps`]) over a cluster of `k` simulated
//! machines defined by a [`placement::Placement`] (built from any
//! [`sgp_partition::Partitioning`]). Results are *computed for real* and
//! are bit-identical to the single-machine reference implementations in
//! [`mod@reference`]; what is simulated is the distributed execution:
//!
//! * **master/mirror replication** exactly as in PowerGraph/PowerLyra:
//!   a vertex is mastered on one machine and mirrored wherever it has
//!   incident edges;
//! * **synchronous supersteps** with sender-side aggregation: each
//!   active vertex receives one gather-partial message per mirror that
//!   holds gather-direction edges, and (when its value changes) sends
//!   one update message per mirror that needs the new value for future
//!   gathers — the Appendix-B semantics under which edge-cut placement
//!   makes PageRank's scatter free;
//! * **per-machine work accounting** (gather/scatter edge operations and
//!   apply vertex operations), from which load-balance distributions
//!   (Fig. 4) and the simulated execution time (Fig. 3) derive via the
//!   [`cost::CostModel`];
//! * **fault-inflated runs** ([`engine::run_program_with_faults`]):
//!   the same superstep under a deterministic
//!   [`sgp_fault::FaultPlan`] — straggler-aware barriers plus
//!   crash-recovery charges (mirror state transfer or recomputation),
//!   reported in [`cost::FaultSummary`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod apps;
pub mod cost;
pub mod engine;
pub mod placement;
pub mod program;
pub mod reference;
pub mod wire;

pub use cost::{CostModel, FaultSummary, IterationStats, RunReport};
pub use engine::{
    run_program, run_program_traced, run_program_with_faults, run_program_with_faults_traced,
    EngineOptions,
};
pub use placement::Placement;
pub use program::{Direction, VertexProgram};
