//! Wire format of engine messages.
//!
//! Message *sizes* drive the network accounting in [`crate::cost`]; this
//! module pins the encoding down so the byte counts in the reports are
//! grounded in a real serialization rather than a guessed constant. The
//! engine never materializes per-message buffers in the hot loop (that
//! would simulate a cluster at the speed of one), but the encoding here
//! is exactly what it *would* put on the wire, and the unit tests keep
//! `encoded_len` and the actual encoder in lockstep.

use bytes::{BufMut, Bytes, BytesMut};

/// Kinds of engine messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Mirror → master gather partial.
    GatherPartial = 0,
    /// Master → mirror vertex-data update.
    VertexUpdate = 1,
}

/// Fixed per-message header: kind (1) + iteration (4) + vertex id (4) +
/// payload length (4) = 13 bytes, padded to 16 for alignment like most
/// RPC framings.
pub const HEADER_BYTES: usize = 16;

/// Encodes a message with the given payload; used by tests and by any
/// future real-transport backend.
pub fn encode(kind: MessageKind, iteration: u32, vertex: u32, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    buf.put_u8(kind as u8);
    buf.put_u32(iteration);
    buf.put_u32(vertex);
    buf.put_u32(payload.len() as u32);
    buf.put_bytes(0, HEADER_BYTES - 13); // padding
    buf.put_slice(payload);
    buf.freeze()
}

/// Size in bytes of an encoded message with `payload_len` payload bytes.
pub const fn encoded_len(payload_len: usize) -> usize {
    HEADER_BYTES + payload_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_matches_encoder() {
        for payload_len in [0usize, 4, 8, 64] {
            let payload = vec![0xABu8; payload_len];
            let msg = encode(MessageKind::GatherPartial, 3, 42, &payload);
            assert_eq!(msg.len(), encoded_len(payload_len));
        }
    }

    #[test]
    fn header_contains_fields() {
        let msg = encode(MessageKind::VertexUpdate, 7, 99, &[1, 2, 3, 4]);
        assert_eq!(msg[0], MessageKind::VertexUpdate as u8);
        assert_eq!(u32::from_be_bytes(msg[1..5].try_into().unwrap()), 7);
        assert_eq!(u32::from_be_bytes(msg[5..9].try_into().unwrap()), 99);
        assert_eq!(u32::from_be_bytes(msg[9..13].try_into().unwrap()), 4);
        assert_eq!(&msg[HEADER_BYTES..], &[1, 2, 3, 4]);
    }
}
