//! Master/mirror placement derived from a [`Partitioning`].
//!
//! This is the PowerGraph/PowerLyra data-layout layer: every edge lives
//! on exactly one machine; every vertex is *mastered* on one machine and
//! *mirrored* on every other machine holding one of its edges. The
//! per-vertex direction information (which mirrors hold in-edges, which
//! hold out-edges) is what determines the paper's communication
//! asymmetry between cut models (Appendix B, Fig. 10).

use serde::{Deserialize, Serialize};
use sgp_graph::{Edge, Graph, VertexId};
use sgp_partition::{PartitionId, Partitioning};

/// The physical layout of a partitioned graph over `k` simulated
/// machines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    /// Number of machines.
    pub k: usize,
    /// Master machine of every vertex.
    pub masters: Vec<PartitionId>,
    /// Full replica set `A(u)` of every vertex (sorted; includes master).
    pub replicas: Vec<Vec<PartitionId>>,
    /// Machines holding at least one *out*-edge of each vertex (sorted).
    pub out_parts: Vec<Vec<PartitionId>>,
    /// Machines holding at least one *in*-edge of each vertex (sorted).
    pub in_parts: Vec<Vec<PartitionId>>,
    /// Edges stored on each machine.
    pub local_edges: Vec<Vec<Edge>>,
    /// Machine of every edge, indexed by [`Graph::edge_index`].
    pub edge_parts: Vec<PartitionId>,
}

impl Placement {
    /// Materializes the layout for `g` under partitioning `p`.
    pub fn build(g: &Graph, p: &Partitioning) -> Self {
        let n = g.num_vertices();
        let k = p.k;
        let masters = p.masters(g);
        let replicas = p.replica_sets(g);
        let mut out_parts: Vec<Vec<PartitionId>> = vec![Vec::new(); n];
        let mut in_parts: Vec<Vec<PartitionId>> = vec![Vec::new(); n];
        let mut local_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
        let insert_sorted = |set: &mut Vec<PartitionId>, part: PartitionId| {
            if let Err(pos) = set.binary_search(&part) {
                set.insert(pos, part);
            }
        };
        for (i, e) in g.edges().enumerate() {
            let part = p.edge_parts[i];
            insert_sorted(&mut out_parts[e.src as usize], part);
            insert_sorted(&mut in_parts[e.dst as usize], part);
            local_edges[part as usize].push(e);
        }
        Placement {
            k,
            masters,
            replicas,
            out_parts,
            in_parts,
            local_edges,
            edge_parts: p.edge_parts.clone(),
        }
    }

    /// Number of vertices covered by the placement.
    pub fn num_vertices(&self) -> usize {
        self.masters.len()
    }

    /// Measured replication factor (average replica-set size), identical
    /// to [`sgp_partition::metrics::replication_factor`].
    // sgp-lint: allow-scope(no-float-accounting): replication factor is a report ratio over integral replica counts
    pub fn replication_factor(&self) -> f64 {
        if self.masters.is_empty() {
            return 0.0;
        }
        let total: usize = self.replicas.iter().map(|s| s.len()).sum();
        total as f64 / self.masters.len() as f64
    }

    /// Edges stored per machine (the vertex-cut load metric).
    pub fn edges_per_machine(&self) -> Vec<usize> {
        self.local_edges.iter().map(|e| e.len()).collect()
    }

    /// Mirrors of `v`: its replicas minus the master.
    pub fn mirrors(&self, v: VertexId) -> impl Iterator<Item = PartitionId> + '_ {
        let master = self.masters[v as usize];
        self.replicas[v as usize].iter().copied().filter(move |&p| p != master)
    }

    /// Machines (excluding the master) that must send a gather partial
    /// for `v` when the gather direction needs in-edges (`use_in`) and/or
    /// out-edges (`use_out`).
    pub fn gather_partial_count(&self, v: VertexId, use_in: bool, use_out: bool) -> usize {
        let master = self.masters[v as usize];
        count_union_excluding(
            if use_in { Some(&self.in_parts[v as usize]) } else { None },
            if use_out { Some(&self.out_parts[v as usize]) } else { None },
            master,
        )
    }

    /// Collects into `buf` the machines counted by
    /// [`Placement::gather_partial_count`] (sorted, deduplicated).
    pub fn gather_partial_parts_into(
        &self,
        v: VertexId,
        use_in: bool,
        use_out: bool,
        buf: &mut Vec<PartitionId>,
    ) {
        let master = self.masters[v as usize];
        union_excluding_into(
            if use_in { Some(&self.in_parts[v as usize]) } else { None },
            if use_out { Some(&self.out_parts[v as usize]) } else { None },
            master,
            buf,
        );
    }

    /// Machines (excluding the master) that must receive `v`'s updated
    /// value so that *neighbours'* gathers keep working: mirrors holding
    /// out-edges when neighbours gather over IN, mirrors holding in-edges
    /// when neighbours gather over OUT.
    pub fn update_target_count(&self, v: VertexId, gather_in: bool, gather_out: bool) -> usize {
        let master = self.masters[v as usize];
        count_union_excluding(
            if gather_in { Some(&self.out_parts[v as usize]) } else { None },
            if gather_out { Some(&self.in_parts[v as usize]) } else { None },
            master,
        )
    }

    /// Collects into `buf` the machines counted by
    /// [`Placement::update_target_count`] (sorted, deduplicated).
    pub fn update_target_parts_into(
        &self,
        v: VertexId,
        gather_in: bool,
        gather_out: bool,
        buf: &mut Vec<PartitionId>,
    ) {
        let master = self.masters[v as usize];
        union_excluding_into(
            if gather_in { Some(&self.out_parts[v as usize]) } else { None },
            if gather_out { Some(&self.in_parts[v as usize]) } else { None },
            master,
            buf,
        );
    }
}

/// Merge-union of two sorted slices into `buf`, excluding one id.
fn union_excluding_into(
    a: Option<&Vec<PartitionId>>,
    b: Option<&Vec<PartitionId>>,
    excluded: PartitionId,
    buf: &mut Vec<PartitionId>,
) {
    buf.clear();
    let empty: &[PartitionId] = &[];
    let x = a.map(|v| v.as_slice()).unwrap_or(empty);
    let y = b.map(|v| v.as_slice()).unwrap_or(empty);
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.len() || j < y.len() {
        let next = match (x.get(i), y.get(j)) {
            (Some(&px), Some(&py)) => {
                if px <= py {
                    if px == py {
                        j += 1;
                    }
                    i += 1;
                    px
                } else {
                    j += 1;
                    py
                }
            }
            (Some(&px), None) => {
                i += 1;
                px
            }
            (None, Some(&py)) => {
                j += 1;
                py
            }
            (None, None) => unreachable!(),
        };
        if next != excluded {
            buf.push(next);
        }
    }
}

/// |(a ∪ b) \ {excluded}| for sorted slices.
fn count_union_excluding(
    a: Option<&Vec<PartitionId>>,
    b: Option<&Vec<PartitionId>>,
    excluded: PartitionId,
) -> usize {
    match (a, b) {
        (None, None) => 0,
        (Some(x), None) | (None, Some(x)) => x.iter().filter(|&&p| p != excluded).count(),
        (Some(x), Some(y)) => {
            let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
            while i < x.len() || j < y.len() {
                let next = match (x.get(i), y.get(j)) {
                    (Some(&px), Some(&py)) => {
                        if px <= py {
                            if px == py {
                                j += 1;
                            }
                            i += 1;
                            px
                        } else {
                            j += 1;
                            py
                        }
                    }
                    (Some(&px), None) => {
                        i += 1;
                        px
                    }
                    (None, Some(&py)) => {
                        j += 1;
                        py
                    }
                    (None, None) => unreachable!(),
                };
                if next != excluded {
                    count += 1;
                }
            }
            count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;
    use sgp_partition::Partitioning;

    /// The 6-vertex example of the paper's Fig. 10: vertex 6 (here 5)
    /// receives edges from 1..=5 (here 0..=4), plus a few chain edges.
    fn fig10_graph() -> Graph {
        GraphBuilder::new()
            .add_edge(0, 5)
            .add_edge(1, 5)
            .add_edge(2, 5)
            .add_edge(3, 5)
            .add_edge(4, 5)
            .add_edge(0, 1)
            .build()
    }

    #[test]
    fn edge_cut_placement_keeps_out_edges_at_master() {
        let g = fig10_graph();
        // Vertices 0,1 on machine 0; 2,3 on 1; 4,5 on 2.
        let p = Partitioning::from_vertex_owners(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        let pl = Placement::build(&g, &p);
        for v in g.vertices() {
            // Every out-edge partition must be exactly the master.
            for &part in &pl.out_parts[v as usize] {
                assert_eq!(part, pl.masters[v as usize], "vertex {v}");
            }
        }
        // Vertex 5 has in-edges on machines 0, 1, 2 → 2 mirror machines.
        assert_eq!(pl.in_parts[5], vec![0, 1, 2]);
        assert_eq!(pl.mirrors(5).count(), 2);
    }

    #[test]
    fn gather_partials_match_fig10b() {
        // Fig. 10(b): edge-cut with sender-side aggregation, PageRank
        // (gather over IN). Vertex 5 mastered on machine 2 receives one
        // partial from machine 0 and one from machine 1.
        let g = fig10_graph();
        let p = Partitioning::from_vertex_owners(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        let pl = Placement::build(&g, &p);
        assert_eq!(pl.gather_partial_count(5, true, false), 2);
        // And zero update messages: all its out-edges (none) are local.
        assert_eq!(pl.update_target_count(5, true, false), 0);
    }

    #[test]
    fn vertex_cut_pays_updates_fig10c() {
        // Fig. 10(c): same graph, but edges of vertex 0 scattered across
        // machines. Give (0,5) to machine 1 and (0,1) to machine 0, with
        // 0 mastered on machine 0: machine 1 needs 0's data → 1 update.
        let g = fig10_graph();
        // Edge order: (0,1) (0,5) (1,5) (2,5) (3,5) (4,5)
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 0, 1, 1, 2]);
        let pl = Placement::build(&g, &p);
        let v0_master = pl.masters[0];
        let updates = pl.update_target_count(0, true, false);
        // Vertex 0 has out-edges on machines {0, 1}; one of them is the
        // master, the other needs an update.
        assert_eq!(pl.out_parts[0], vec![0, 1]);
        assert_eq!(updates, if v0_master == 0 || v0_master == 1 { 1 } else { 2 });
    }

    #[test]
    fn replication_factor_matches_partition_metric() {
        let g = fig10_graph();
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 0, 1, 1, 2]);
        let pl = Placement::build(&g, &p);
        let rf = sgp_partition::metrics::replication_factor(&g, &p);
        assert!((pl.replication_factor() - rf).abs() < 1e-12);
    }

    #[test]
    fn local_edges_partition_the_edge_set() {
        let g = fig10_graph();
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 0, 1, 1, 2]);
        let pl = Placement::build(&g, &p);
        let total: usize = pl.local_edges.iter().map(|e| e.len()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(pl.edges_per_machine(), vec![2, 3, 1]);
    }

    #[test]
    fn both_direction_gather_counts_union() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        // (0,1) on machine 0, (1,2) on machine 1; master of 1 on machine 2
        // is impossible (masters come from replicas), so place manually:
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1]);
        let pl = Placement::build(&g, &p);
        let m = pl.masters[1];
        // Vertex 1: in-edges on {0}, out-edges on {1}. Gather BOTH =
        // union {0,1} minus master.
        let expected = [0u32, 1u32].iter().filter(|&&x| x != m).count();
        assert_eq!(pl.gather_partial_count(1, true, true), expected);
    }

    #[test]
    fn parts_into_agrees_with_counts() {
        let g = fig10_graph();
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 0, 1, 1, 2]);
        let pl = Placement::build(&g, &p);
        let mut buf = Vec::new();
        for v in g.vertices() {
            for (use_in, use_out) in [(true, false), (false, true), (true, true)] {
                pl.gather_partial_parts_into(v, use_in, use_out, &mut buf);
                assert_eq!(buf.len(), pl.gather_partial_count(v, use_in, use_out));
                pl.update_target_parts_into(v, use_in, use_out, &mut buf);
                assert_eq!(buf.len(), pl.update_target_count(v, use_in, use_out));
            }
        }
    }

    #[test]
    fn edge_parts_preserved() {
        let g = fig10_graph();
        let parts = vec![0u32, 1, 0, 1, 1, 2];
        let p = Partitioning::from_edge_parts(&g, 3, parts.clone());
        let pl = Placement::build(&g, &p);
        assert_eq!(pl.edge_parts, parts);
    }

    #[test]
    fn union_excluding_helper() {
        let a = vec![0u32, 1, 3];
        let b = vec![1u32, 2, 3];
        assert_eq!(count_union_excluding(Some(&a), Some(&b), 3), 3); // {0,1,2}
        assert_eq!(count_union_excluding(Some(&a), None, 0), 2);
        assert_eq!(count_union_excluding(None, None, 0), 0);
    }
}
