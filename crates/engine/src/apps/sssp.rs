//! Single-Source Shortest Path (§5.1.3), unit edge weights.
//!
//! "Initially, only the source vertex is active and other vertices are
//! activated upon receiving a message in BFS traversal order. Network
//! communication initially grows and then shrinks with each iteration."
//! The ordered activation makes SSSP "a challenging test for SGP
//! algorithms as it does not fit into the uniform workload assumption."

use crate::program::{Direction, VertexProgram};
use sgp_graph::{Graph, VertexId};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// The SSSP vertex program (Bellman-Ford style over in-edges).
#[derive(Debug, Clone)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type VertexData = u64;
    type Gather = u64;

    const DATA_BYTES: usize = 8;
    const GATHER_BYTES: usize = 8;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn init(&self, v: VertexId, _g: &Graph) -> u64 {
        if v == self.source {
            0
        } else {
            UNREACHABLE
        }
    }

    fn initial_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        Some(vec![self.source])
    }

    fn gather_identity(&self) -> u64 {
        UNREACHABLE
    }

    fn gather_edge(&self, _g: &Graph, _v: VertexId, _nbr: VertexId, nbr_data: &u64) -> u64 {
        nbr_data.saturating_add(1)
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn apply(&self, _g: &Graph, _v: VertexId, old: &u64, acc: u64, _iteration: usize) -> u64 {
        (*old).min(acc)
    }

    fn max_iterations(&self) -> usize {
        1 << 20 // bounded by the graph diameter in practice
    }
}
