//! Weakly Connected Components (§5.1.3): label propagation over the
//! undirected view of the graph.
//!
//! "Each vertex updates its component id by retrieving those of each of
//! its neighbors and selecting the minimum. This is repeated until
//! convergence. [...] vertices are only activated with incoming messages
//! and therefore network communication shrinks [...] at each iteration."

use crate::program::{Direction, VertexProgram};
use sgp_graph::{Graph, VertexId};

/// The WCC (minimum label propagation) vertex program.
#[derive(Debug, Clone, Default)]
pub struct Wcc;

impl Wcc {
    /// Creates the WCC program.
    pub fn new() -> Self {
        Wcc
    }
}

impl VertexProgram for Wcc {
    type VertexData = u32;
    type Gather = u32;

    const DATA_BYTES: usize = 4;
    const GATHER_BYTES: usize = 4;

    fn name(&self) -> &'static str {
        "WCC"
    }

    fn gather_direction(&self) -> Direction {
        Direction::Both // weakly connected: ignore edge direction
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Both
    }

    fn init(&self, v: VertexId, _g: &Graph) -> u32 {
        v // every vertex starts as its own component
    }

    fn initial_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        None // all active at iteration 0
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_edge(&self, _g: &Graph, _v: VertexId, _nbr: VertexId, nbr_data: &u32) -> u32 {
        *nbr_data
    }

    fn merge(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _g: &Graph, _v: VertexId, old: &u32, acc: u32, _iteration: usize) -> u32 {
        (*old).min(acc)
    }

    fn max_iterations(&self) -> usize {
        // Label propagation needs at most the diameter of the largest
        // component; cap generously for pathological chains.
        1 << 20
    }
}
