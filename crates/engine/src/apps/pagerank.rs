//! PageRank: "the single most popular algorithm for evaluating the
//! performance of graph partitioning algorithms" (§5.1.3).
//!
//! Matches the PowerLyra implementation the paper uses: vertex weights
//! are "iteratively updated based on each vertex's incoming links for a
//! fixed number of iterations (20 in our experiments)"; every vertex is
//! active at every iteration, giving "uniform and stable computation and
//! communication costs".

use crate::program::{Direction, VertexProgram};
use sgp_graph::{Graph, VertexId};

/// Damping factor used by PowerGraph/PowerLyra's default PageRank.
pub const DAMPING: f64 = 0.85;

/// The PageRank vertex program.
#[derive(Debug, Clone)]
pub struct PageRank {
    iterations: usize,
}

impl PageRank {
    /// PageRank with a fixed iteration count (the paper uses 20).
    pub fn new(iterations: usize) -> Self {
        assert!(iterations >= 1, "need at least one iteration");
        PageRank { iterations }
    }
}

impl VertexProgram for PageRank {
    type VertexData = f64;
    type Gather = f64;

    const DATA_BYTES: usize = 8;
    const GATHER_BYTES: usize = 8;

    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn init(&self, _v: VertexId, _g: &Graph) -> f64 {
        1.0
    }

    fn initial_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        None // all active
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    fn gather_edge(&self, g: &Graph, _v: VertexId, nbr: VertexId, nbr_data: &f64) -> f64 {
        // Contribution of in-neighbour `nbr`: its rank spread over its
        // out-edges. Out-degree is ≥ 1 here because the edge exists.
        nbr_data / g.out_degree(nbr) as f64
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _g: &Graph, _v: VertexId, _old: &f64, acc: f64, _iteration: usize) -> f64 {
        (1.0 - DAMPING) + DAMPING * acc
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn all_active(&self) -> bool {
        true
    }
}
