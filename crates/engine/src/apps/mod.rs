//! The paper's three offline analytic workloads (§5.1.3) as GAS vertex
//! programs: PageRank, Weakly Connected Components, and Single-Source
//! Shortest Path.

mod pagerank;
mod sssp;
mod wcc;

pub use pagerank::{PageRank, DAMPING};
pub use sssp::{Sssp, UNREACHABLE};
pub use wcc::Wcc;
