//! Single-machine reference implementations used to validate the
//! distributed engine: the engine must produce identical results (up to
//! floating-point associativity for PageRank) for *every* partitioning.

use sgp_graph::{Graph, VertexId};

/// Reference PageRank: synchronous iterations over in-edges, matching
/// [`crate::apps::PageRank`].
pub fn pagerank(g: &Graph, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iterations {
        let mut next = vec![0.0f64; n];
        for v in g.vertices() {
            let sum: f64 =
                g.in_neighbors(v).iter().map(|&u| ranks[u as usize] / g.out_degree(u) as f64).sum();
            next[v as usize] = (1.0 - crate::apps::DAMPING) + crate::apps::DAMPING * sum;
        }
        ranks = next;
    }
    ranks
}

/// Reference WCC: BFS labelling over the undirected structure.
pub fn wcc(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    for root in 0..n as u32 {
        if visited[root as usize] {
            continue;
        }
        // The minimum vertex id in a component becomes its label only if
        // we traverse from the smallest root first — iterating roots in
        // ascending order guarantees that.
        visited[root as usize] = true;
        labels[root as usize] = root;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for w in g.undirected_neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    labels[w as usize] = root;
                    queue.push_back(w);
                }
            }
        }
    }
    labels
}

/// Reference SSSP: BFS (unit weights) over out-edges from `source`.
pub fn sssp(g: &Graph, source: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![crate::apps::UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v) {
            if dist[w as usize] == crate::apps::UNREACHABLE {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;

    fn chain() -> Graph {
        GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build()
    }

    #[test]
    fn reference_sssp_on_chain() {
        let g = chain();
        assert_eq!(sssp(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(sssp(&g, 2), vec![u64::MAX, u64::MAX, 0, 1]);
    }

    #[test]
    fn reference_wcc_on_two_components() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(2, 3).build();
        assert_eq!(wcc(&g), vec![0, 0, 2, 2]);
    }

    #[test]
    fn reference_wcc_ignores_direction() {
        let g = GraphBuilder::new().add_edge(1, 0).add_edge(1, 2).build();
        assert_eq!(wcc(&g), vec![0, 0, 0]);
    }

    #[test]
    fn reference_pagerank_sums_to_n() {
        let g = chain().to_undirected();
        let pr = pagerank(&g, 30);
        let total: f64 = pr.iter().sum();
        // With no dangling vertices PageRank mass is conserved at n.
        assert!((total - g.num_vertices() as f64).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn reference_pagerank_ranks_hub_highest() {
        let g =
            GraphBuilder::new().add_edge(1, 0).add_edge(2, 0).add_edge(3, 0).add_edge(0, 1).build();
        let pr = pagerank(&g, 30);
        assert!(pr[0] > pr[1] && pr[0] > pr[2] && pr[0] > pr[3]);
    }
}
