//! The Gather–Apply–Scatter vertex-program abstraction.
//!
//! Mirrors PowerGraph's programming model (§2 of the paper: "the state is
//! pulled (rather than pushed) by vertices at the beginning of each
//! iteration"): a program declares the edge direction it gathers over,
//! an associative accumulator, an apply function, and the activation
//! behaviour of its scatter phase.

use serde::{Deserialize, Serialize};
use sgp_graph::{Graph, VertexId};

/// Edge direction relative to the executing vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// In-edges only (PageRank, SSSP).
    In,
    /// Out-edges only.
    Out,
    /// Both directions, i.e. the undirected view (WCC).
    Both,
    /// No edges in this phase.
    None,
}

impl Direction {
    /// Does the direction include in-edges of the executing vertex?
    pub fn uses_in(self) -> bool {
        matches!(self, Direction::In | Direction::Both)
    }

    /// Does the direction include out-edges of the executing vertex?
    pub fn uses_out(self) -> bool {
        matches!(self, Direction::Out | Direction::Both)
    }
}

/// A GAS vertex program.
///
/// The engine guarantees PowerGraph's semantics: at the start of every
/// iteration, each *active* vertex gathers over its declared edge
/// direction, the partial results are merged with [`VertexProgram::merge`]
/// (which must be associative and commutative — this is what makes
/// sender-side aggregation legal), `apply` produces the new vertex value
/// at the master, and if the value changed the scatter phase activates
/// neighbours along [`VertexProgram::scatter_direction`].
pub trait VertexProgram {
    /// Per-vertex state.
    type VertexData: Clone + PartialEq + std::fmt::Debug;
    /// Gather accumulator.
    type Gather: Clone;

    /// Wire size of one vertex-data update message payload, in bytes.
    const DATA_BYTES: usize;
    /// Wire size of one gather-partial message payload, in bytes.
    const GATHER_BYTES: usize;

    /// Short program name for reports.
    fn name(&self) -> &'static str;

    /// Edge direction gathered over.
    fn gather_direction(&self) -> Direction;

    /// Edge direction scattered over (activation).
    fn scatter_direction(&self) -> Direction;

    /// Initial value of every vertex.
    fn init(&self, v: VertexId, g: &Graph) -> Self::VertexData;

    /// Initially active vertices. `None` means "all vertices".
    fn initial_frontier(&self, g: &Graph) -> Option<Vec<VertexId>>;

    /// Identity element of the gather accumulator.
    fn gather_identity(&self) -> Self::Gather;

    /// Contribution of the edge between `v` (the gathering vertex) and
    /// `nbr` (the other endpoint, whose current data is `nbr_data`).
    fn gather_edge(
        &self,
        g: &Graph,
        v: VertexId,
        nbr: VertexId,
        nbr_data: &Self::VertexData,
    ) -> Self::Gather;

    /// Merges two accumulators (associative & commutative).
    fn merge(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// Computes the new vertex value at the master.
    fn apply(
        &self,
        g: &Graph,
        v: VertexId,
        old: &Self::VertexData,
        acc: Self::Gather,
        iteration: usize,
    ) -> Self::VertexData;

    /// Whether a changed vertex activates its scatter-direction
    /// neighbours for the next iteration. All-active programs
    /// (PageRank) return `true` unconditionally and bound the run with
    /// [`VertexProgram::max_iterations`].
    fn activates_on_change(&self) -> bool {
        true
    }

    /// Hard iteration cap. Activation-driven programs (WCC, SSSP) stop
    /// earlier when the frontier empties.
    fn max_iterations(&self) -> usize;

    /// Whether every vertex is re-activated each iteration regardless of
    /// change propagation ("all active algorithm" in the paper's
    /// terminology — PageRank).
    fn all_active(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_predicates() {
        assert!(Direction::In.uses_in());
        assert!(!Direction::In.uses_out());
        assert!(Direction::Both.uses_in() && Direction::Both.uses_out());
        assert!(!Direction::None.uses_in() && !Direction::None.uses_out());
        assert!(Direction::Out.uses_out());
    }
}
