//! The synchronous GAS engine.
//!
//! Executes a [`VertexProgram`] over a [`Placement`] in supersteps,
//! producing both the **real computation result** and a full
//! communication/compute [`RunReport`]. See the crate docs for the
//! message-accounting semantics; the short version per iteration:
//!
//! 1. **Gather** — each machine scans its local edges; edges incident to
//!    an active vertex in the gather direction contribute to that
//!    vertex's accumulator. With sender-side aggregation, each machine
//!    sends *one* partial per (active vertex, machine) pair; without it
//!    (the ablation of Fig. 10(a) vs 10(b)) one message per remote edge.
//! 2. **Apply** — the master merges the partials and computes the new
//!    value; one apply op of compute.
//! 3. **Update/Scatter** — if the value changed (or it is the seeding
//!    iteration for the initial frontier), the master pushes the new
//!    value to every mirror that future gathers will read it from, and
//!    activates scatter-direction neighbours.

use crate::cost::{CostModel, IterationStats, RunReport};
use crate::placement::Placement;
use crate::program::VertexProgram;
use crate::wire::encoded_len;
use sgp_graph::Graph;

/// Engine execution options.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Sender-side aggregation (on by default; §2 and Appendix B call it
    /// "a common optimization technique for reducing network overhead").
    pub sender_side_aggregation: bool,
    /// The simulated-hardware cost model.
    pub cost: CostModel,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { sender_side_aggregation: true, cost: CostModel::default() }
    }
}

/// Runs `prog` to completion; returns the final vertex data and the run
/// report.
pub fn run_program<P: VertexProgram>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
) -> (Vec<P::VertexData>, RunReport) {
    let n = g.num_vertices();
    let k = placement.k;
    assert_eq!(placement.num_vertices(), n, "placement does not match graph");

    let mut data: Vec<P::VertexData> = g.vertices().map(|v| prog.init(v, g)).collect();
    let mut active = vec![false; n];
    let mut seeded = vec![false; n]; // active for the first time this run
    match prog.initial_frontier(g) {
        Some(frontier) => {
            for v in frontier {
                active[v as usize] = true;
                seeded[v as usize] = true;
            }
        }
        None => {
            active.fill(true);
            seeded.fill(true);
        }
    }

    let gather_dir = prog.gather_direction();
    let scatter_dir = prog.scatter_direction();
    let (g_in, g_out) = (gather_dir.uses_in(), gather_dir.uses_out());

    let mut iterations: Vec<IterationStats> = Vec::new();
    let mut machine_total_ns = vec![0.0f64; k];
    let mut total_wall_ns = 0.0f64;
    let mut parts_buf: Vec<u32> = Vec::with_capacity(k);

    for iteration in 0..prog.max_iterations() {
        let active_count = active.iter().filter(|&&a| a).count();
        if active_count == 0 {
            break;
        }

        let mut compute_ns = vec![0.0f64; k];
        let mut sent_bytes = vec![0u64; k];
        let mut recv_bytes = vec![0u64; k];
        let mut gather_messages = 0u64;
        let mut update_messages = 0u64;

        // ---- Gather phase -------------------------------------------------
        let mut acc: Vec<Option<P::Gather>> = vec![None; n];
        for (machine, edges) in placement.local_edges.iter().enumerate() {
            for e in edges {
                // Edge (u, v): contributes to v when gathering over IN,
                // to u when gathering over OUT.
                if g_in && active[e.dst as usize] {
                    let contrib = prog.gather_edge(g, e.dst, e.src, &data[e.src as usize]);
                    merge_into(prog, &mut acc[e.dst as usize], contrib);
                    compute_ns[machine] += opts.cost.ns_per_edge_op;
                    if !opts.sender_side_aggregation {
                        let master = placement.masters[e.dst as usize] as usize;
                        if master != machine {
                            gather_messages += 1;
                            let len = encoded_len(P::GATHER_BYTES) as u64;
                            sent_bytes[machine] += len;
                            recv_bytes[master] += len;
                        }
                    }
                }
                if g_out && active[e.src as usize] {
                    let contrib = prog.gather_edge(g, e.src, e.dst, &data[e.dst as usize]);
                    merge_into(prog, &mut acc[e.src as usize], contrib);
                    compute_ns[machine] += opts.cost.ns_per_edge_op;
                    if !opts.sender_side_aggregation {
                        let master = placement.masters[e.src as usize] as usize;
                        if master != machine {
                            gather_messages += 1;
                            let len = encoded_len(P::GATHER_BYTES) as u64;
                            sent_bytes[machine] += len;
                            recv_bytes[master] += len;
                        }
                    }
                }
            }
        }
        // Aggregated gather partials: one per (active vertex, mirror
        // machine holding gather edges).
        if opts.sender_side_aggregation {
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                placement.gather_partial_parts_into(v as u32, g_in, g_out, &mut parts_buf);
                for &machine in parts_buf.iter() {
                    gather_messages += 1;
                    let len = encoded_len(P::GATHER_BYTES) as u64;
                    sent_bytes[machine as usize] += len;
                    recv_bytes[placement.masters[v] as usize] += len;
                }
            }
        }

        // ---- Apply phase --------------------------------------------------
        let mut changed = vec![false; n];
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let master = placement.masters[v] as usize;
            compute_ns[master] += opts.cost.ns_per_apply;
            let total = acc[v].take().unwrap_or_else(|| prog.gather_identity());
            let new = prog.apply(g, v as u32, &data[v], total, iteration);
            if new != data[v] {
                changed[v] = true;
                data[v] = new;
            } else if seeded[v] && iteration == 0 {
                // Seeding rule: the initial frontier propagates even when
                // apply leaves the value unchanged (e.g. the SSSP source
                // keeps distance 0 but must still announce it).
                changed[v] = true;
            }
        }

        // ---- Update / scatter phase ---------------------------------------
        let mut next_active = vec![false; n];
        #[allow(clippy::needless_range_loop)] // v indexes four parallel arrays
        for v in 0..n {
            if !changed[v] {
                continue;
            }
            // Vertex-data updates to mirrors that future gathers read.
            placement.update_target_parts_into(v as u32, g_in, g_out, &mut parts_buf);
            let master = placement.masters[v] as usize;
            for &machine in parts_buf.iter() {
                update_messages += 1;
                let len = encoded_len(P::DATA_BYTES) as u64;
                sent_bytes[master] += len;
                recv_bytes[machine as usize] += len;
            }
            // Activation along the scatter direction; the scatter edge
            // work executes on the machine storing each edge.
            if prog.activates_on_change() {
                if scatter_dir.uses_out() {
                    let range = g.out_edge_range(v as u32);
                    for (idx, &w) in range.clone().zip(g.out_neighbors(v as u32)) {
                        next_active[w as usize] = true;
                        compute_ns[placement.edge_parts[idx] as usize] += opts.cost.ns_per_edge_op;
                    }
                }
                if scatter_dir.uses_in() {
                    for &w in g.in_neighbors(v as u32) {
                        next_active[w as usize] = true;
                        // sgp-lint: allow(no-panic-in-lib): w came from g.in_neighbors(v), so the CSR edge (w, v) exists by construction
                        let idx = g.edge_index(w, v as u32).expect("in-edge exists");
                        compute_ns[placement.edge_parts[idx] as usize] += opts.cost.ns_per_edge_op;
                    }
                }
            }
        }

        // ---- Barrier: iteration wall time ----------------------------------
        let mut wall: f64 = 0.0;
        let mut machine_bytes = vec![0u64; k];
        for m in 0..k {
            machine_bytes[m] = sent_bytes[m] + recv_bytes[m];
            let net_ns = machine_bytes[m] as f64 / opts.cost.bytes_per_second * 1e9;
            wall = wall.max(compute_ns[m] + net_ns);
            machine_total_ns[m] += compute_ns[m];
        }
        wall += opts.cost.barrier_ns;
        total_wall_ns += wall;

        iterations.push(IterationStats {
            active_vertices: active_count,
            gather_messages,
            update_messages,
            network_bytes: sent_bytes.iter().sum::<u64>(),
            machine_compute_ns: compute_ns,
            machine_bytes,
            wall_ns: wall,
        });

        seeded.fill(false);
        if prog.all_active() {
            active.fill(true);
        } else {
            active = next_active;
        }
    }

    let report = RunReport {
        program: prog.name(),
        machines: k,
        replication_factor: placement.replication_factor(),
        iterations,
        machine_compute_ns: machine_total_ns,
        total_wall_ns,
    };
    (data, report)
}

fn merge_into<P: VertexProgram>(prog: &P, slot: &mut Option<P::Gather>, contrib: P::Gather) {
    *slot = Some(match slot.take() {
        Some(existing) => prog.merge(existing, contrib),
        None => contrib,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{PageRank, Sssp, Wcc};
    use crate::reference;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
    use sgp_graph::{GraphBuilder, StreamOrder};
    use sgp_partition::{partition, Algorithm, PartitionerConfig, Partitioning};

    fn any_graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 300, edges: 1800, seed: 21 })
    }

    fn placement_for(g: &Graph, alg: Algorithm, k: usize) -> Placement {
        let cfg = PartitionerConfig::new(k);
        let p = partition(g, alg, &cfg, StreamOrder::Random { seed: 5 });
        Placement::build(g, &p)
    }

    #[test]
    fn pagerank_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::pagerank(&g, 20);
        for alg in [Algorithm::EcrHash, Algorithm::Hdrf, Algorithm::Ginger, Algorithm::Metis] {
            let pl = placement_for(&g, alg, 4);
            let (ranks, _) = run_program(&g, &pl, &PageRank::new(20), &EngineOptions::default());
            for (v, (&a, &b)) in ranks.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * b.abs().max(1.0),
                    "{alg:?}: rank mismatch at {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn wcc_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::wcc(&g);
        for alg in
            [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::Hdrf, Algorithm::HybridRandom]
        {
            let pl = placement_for(&g, alg, 4);
            let (labels, _) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
            assert_eq!(labels, reference, "{alg:?}");
        }
    }

    #[test]
    fn sssp_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::sssp(&g, 0);
        for alg in [Algorithm::Ldg, Algorithm::Dbh, Algorithm::Grid] {
            let pl = placement_for(&g, alg, 4);
            let (dist, _) = run_program(&g, &pl, &Sssp::new(0), &EngineOptions::default());
            assert_eq!(dist, reference, "{alg:?}");
        }
    }

    #[test]
    fn pagerank_runs_exactly_fixed_iterations() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(7), &EngineOptions::default());
        assert_eq!(report.num_iterations(), 7);
        assert!(report.iterations.iter().all(|i| i.active_vertices == g.num_vertices()));
    }

    #[test]
    fn edge_cut_pagerank_has_no_update_messages() {
        // Appendix B: with out-edges grouped at the master, PageRank's
        // scatter is local — only gather partials cross the network.
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
        let updates: u64 = report.iterations.iter().map(|i| i.update_messages).sum();
        assert_eq!(updates, 0, "edge-cut PageRank must not send vertex updates");
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn vertex_cut_pagerank_sends_updates() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::VcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
        let updates: u64 = report.iterations.iter().map(|i| i.update_messages).sum();
        assert!(updates > 0, "vertex-cut PageRank must synchronize mirrors");
    }

    #[test]
    fn edge_cut_cheaper_than_vertex_cut_per_rf_for_pagerank() {
        // The headline of Fig. 1(a): per unit of replication factor,
        // edge-cut placements move fewer bytes for PageRank.
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 1000, edges: 8000, seed: 9 });
        let ec = placement_for(&g, Algorithm::EcrHash, 8);
        let vc = placement_for(&g, Algorithm::VcrHash, 8);
        let (_, rec) = run_program(&g, &ec, &PageRank::new(5), &EngineOptions::default());
        let (_, rvc) = run_program(&g, &vc, &PageRank::new(5), &EngineOptions::default());
        let slope_ec = rec.total_network_bytes() as f64 / (rec.replication_factor - 1.0).max(1e-9);
        let slope_vc = rvc.total_network_bytes() as f64 / (rvc.replication_factor - 1.0).max(1e-9);
        assert!(
            slope_ec < slope_vc,
            "edge-cut slope {slope_ec} should undercut vertex-cut slope {slope_vc}"
        );
    }

    #[test]
    fn aggregation_reduces_messages() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let with = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default()).1;
        let without = run_program(
            &g,
            &pl,
            &PageRank::new(3),
            &EngineOptions { sender_side_aggregation: false, ..Default::default() },
        )
        .1;
        assert!(
            with.total_messages() < without.total_messages(),
            "aggregation must reduce message count ({} vs {})",
            with.total_messages(),
            without.total_messages()
        );
    }

    #[test]
    fn single_machine_run_sends_nothing() {
        let g = any_graph();
        let p = Partitioning::from_vertex_owners(&g, 1, vec![0; g.num_vertices()]);
        let pl = Placement::build(&g, &p);
        let (_, report) = run_program(&g, &pl, &PageRank::new(5), &EngineOptions::default());
        assert_eq!(report.total_messages(), 0);
        assert_eq!(report.total_network_bytes(), 0);
        assert!(report.total_wall_ns > 0.0);
    }

    #[test]
    fn wcc_active_set_shrinks() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
        let first = report.iterations.first().expect("at least one iteration").active_vertices;
        let last = report.iterations.last().expect("at least one iteration").active_vertices;
        assert_eq!(first, g.num_vertices(), "WCC starts all-active");
        assert!(last < first, "WCC frontier must shrink");
    }

    #[test]
    fn sssp_frontier_grows_then_shrinks() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1, 0]);
        let pl = Placement::build(&g, &p);
        let (dist, report) = run_program(&g, &pl, &Sssp::new(0), &EngineOptions::default());
        assert_eq!(dist, vec![0, 1, 1, 2, 3]);
        let actives: Vec<usize> = report.iterations.iter().map(|i| i.active_vertices).collect();
        assert_eq!(actives[0], 1, "SSSP starts from the source only");
        assert!(actives.iter().max().unwrap() > &1, "frontier must expand");
    }

    #[test]
    fn per_machine_compute_sums_are_positive_everywhere() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::VcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(5), &EngineOptions::default());
        assert_eq!(report.machine_compute_ns.len(), 4);
        assert!(report.machine_compute_ns.iter().all(|&t| t > 0.0));
    }
}
