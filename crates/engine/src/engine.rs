//! The synchronous GAS engine.
//!
//! Executes a [`VertexProgram`] over a [`Placement`] in supersteps,
//! producing both the **real computation result** and a full
//! communication/compute [`RunReport`]. See the crate docs for the
//! message-accounting semantics; the short version per iteration:
//!
//! 1. **Gather** — each machine scans its local edges; edges incident to
//!    an active vertex in the gather direction contribute to that
//!    vertex's accumulator. With sender-side aggregation, each machine
//!    sends *one* partial per (active vertex, machine) pair; without it
//!    (the ablation of Fig. 10(a) vs 10(b)) one message per remote edge.
//! 2. **Apply** — the master merges the partials and computes the new
//!    value; one apply op of compute.
//! 3. **Update/Scatter** — if the value changed (or it is the seeding
//!    iteration for the initial frontier), the master pushes the new
//!    value to every mirror that future gathers will read it from, and
//!    activates scatter-direction neighbours.

use crate::cost::{CostModel, FaultSummary, IterationStats, RunReport};
use crate::placement::Placement;
use crate::program::VertexProgram;
use crate::wire::encoded_len;
use sgp_fault::{FaultEvent, FaultPlan};
use sgp_graph::Graph;
use sgp_trace::{keys, NullSink, TraceSink};

/// Engine execution options.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Sender-side aggregation (on by default; §2 and Appendix B call it
    /// "a common optimization technique for reducing network overhead").
    pub sender_side_aggregation: bool,
    /// The simulated-hardware cost model.
    pub cost: CostModel,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { sender_side_aggregation: true, cost: CostModel::default() }
    }
}

/// Runs `prog` to completion; returns the final vertex data and the run
/// report.
pub fn run_program<P: VertexProgram>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
) -> (Vec<P::VertexData>, RunReport) {
    run_program_impl(g, placement, prog, opts, None, &mut NullSink)
}

/// [`run_program`] with trace events recorded into `sink` (DESIGN.md §9).
///
/// All stamps are **simulated nanoseconds** from the cost model, so the
/// emitted trace is a pure function of the inputs — identical runs yield
/// byte-identical traces. With a [`NullSink`] the instrumentation
/// monomorphizes away and the computed result and report are exactly
/// those of [`run_program`].
pub fn run_program_traced<P: VertexProgram, S: TraceSink>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
    sink: &mut S,
) -> (Vec<P::VertexData>, RunReport) {
    run_program_impl(g, placement, prog, opts, None, sink)
}

/// Runs `prog` under a deterministic [`FaultPlan`] (DESIGN.md §7).
///
/// The engine models faults as **pause-and-recover**: the synchronous
/// barrier makes every superstep a global checkpoint, so the computed
/// result is *identical* to the healthy run — what changes is the cost
/// accounting. Straggler windows multiply the affected machine's
/// compute time inside each overlapping superstep; a crash is charged
/// once, at the start of the first superstep after its crash time:
/// masters with a live mirror are restored by shipping their vertex
/// data (bytes on the NIC), masters without one are recomputed
/// (apply + edge ops), and both costs land in `total_wall_ns` and the
/// report's [`FaultSummary`]. Message loss does not apply: barrier
/// delivery is reliable-retransmit, which the recovery model subsumes.
///
/// # Panics
/// Panics if the plan fails validation or covers a different number of
/// machines than `placement`.
pub fn run_program_with_faults<P: VertexProgram>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
    plan: &FaultPlan,
) -> (Vec<P::VertexData>, RunReport) {
    run_program_with_faults_traced(g, placement, prog, opts, plan, &mut NullSink)
}

/// [`run_program_with_faults`] with trace events recorded into `sink`.
///
/// Adds fault-recovery spans and crash counters on top of the healthy
/// instrumentation of [`run_program_traced`].
///
/// # Panics
/// Panics if the plan fails validation or covers a different number of
/// machines than `placement`.
pub fn run_program_with_faults_traced<P: VertexProgram, S: TraceSink>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
    plan: &FaultPlan,
    sink: &mut S,
) -> (Vec<P::VertexData>, RunReport) {
    assert_eq!(plan.machines, placement.k, "fault plan must match the placement");
    assert!(plan.validate().is_ok(), "fault plan must validate");
    run_program_impl(g, placement, prog, opts, Some(plan), sink)
}

/// Tracks which plan events have been charged and accumulates the
/// fault summary across supersteps.
struct FaultState<'p> {
    plan: &'p FaultPlan,
    fired: Vec<bool>,
    summary: FaultSummary,
}

impl FaultState<'_> {
    /// Returns the fault-inflated wall time of one superstep and
    /// charges any crash whose time has come.
    #[allow(clippy::too_many_arguments)]
    fn charge_iteration(
        &mut self,
        g: &Graph,
        placement: &Placement,
        cost: &CostModel,
        compute_ns: &[f64],
        machine_bytes: &[u64],
        iter_start_ns: f64,
        healthy_wall: f64,
        data_bytes: usize,
    ) -> f64 {
        let t = iter_start_ns as u64;
        let mut wall: f64 = 0.0;
        for (m, &c) in compute_ns.iter().enumerate() {
            let net_ns = machine_bytes[m] as f64 / cost.bytes_per_second * 1e9;
            wall = wall.max(c * self.plan.slowdown(m as u32, t) + net_ns);
        }
        wall += cost.barrier_ns;
        self.summary.straggler_extra_ns += (wall - healthy_wall).max(0.0);
        for (i, e) in self.plan.events.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let FaultEvent::Crash { machine, at_ns, .. } = *e {
                if t < at_ns {
                    continue;
                }
                self.fired[i] = true;
                self.summary.crashes += 1;
                let mut bytes = 0u64;
                let mut recompute_ns = 0.0f64;
                for (v, &master) in placement.masters.iter().enumerate() {
                    if master != machine {
                        continue;
                    }
                    if placement.replicas[v].len() >= 2 {
                        self.summary.recovered_vertices += 1;
                        bytes += encoded_len(data_bytes) as u64;
                    } else {
                        self.summary.recomputed_vertices += 1;
                        recompute_ns +=
                            cost.ns_per_apply + cost.ns_per_edge_op * g.degree(v as u32) as f64;
                    }
                }
                let recovery_ns = bytes as f64 / cost.bytes_per_second * 1e9 + recompute_ns;
                self.summary.recovery_bytes += bytes;
                self.summary.recovery_ns += recovery_ns;
                wall += recovery_ns;
            }
        }
        wall
    }
}

fn run_program_impl<P: VertexProgram, S: TraceSink>(
    g: &Graph,
    placement: &Placement,
    prog: &P,
    opts: &EngineOptions,
    plan: Option<&FaultPlan>,
    sink: &mut S,
) -> (Vec<P::VertexData>, RunReport) {
    let n = g.num_vertices();
    let k = placement.k;
    assert_eq!(placement.num_vertices(), n, "placement does not match graph");

    let mut data: Vec<P::VertexData> = g.vertices().map(|v| prog.init(v, g)).collect();
    let mut active = vec![false; n];
    let mut seeded = vec![false; n]; // active for the first time this run
    match prog.initial_frontier(g) {
        Some(frontier) => {
            for v in frontier {
                active[v as usize] = true;
                seeded[v as usize] = true;
            }
        }
        None => {
            active.fill(true);
            seeded.fill(true);
        }
    }

    let gather_dir = prog.gather_direction();
    let scatter_dir = prog.scatter_direction();
    let (g_in, g_out) = (gather_dir.uses_in(), gather_dir.uses_out());

    let mut iterations: Vec<IterationStats> = Vec::new();
    let mut machine_total_ns = vec![0.0f64; k];
    let mut total_wall_ns = 0.0f64;
    let mut parts_buf: Vec<u32> = Vec::with_capacity(k);
    let mut fault_state = plan.map(|p| FaultState {
        plan: p,
        fired: vec![false; p.events.len()],
        summary: FaultSummary::default(),
    });

    sink.span_enter(keys::ENGINE_RUN, 0, 0);
    for iteration in 0..prog.max_iterations() {
        let active_count = active.iter().filter(|&&a| a).count();
        if active_count == 0 {
            break;
        }
        let iter_start_stamp = total_wall_ns as u64;
        sink.span_enter(keys::ENGINE_SUPERSTEP, iteration as u64, iter_start_stamp);

        let mut compute_ns = vec![0.0f64; k];
        let mut sent_bytes = vec![0u64; k];
        let mut recv_bytes = vec![0u64; k];
        let mut gather_messages = 0u64;
        let mut update_messages = 0u64;

        // ---- Gather phase -------------------------------------------------
        let mut acc: Vec<Option<P::Gather>> = vec![None; n];
        for (machine, edges) in placement.local_edges.iter().enumerate() {
            for e in edges {
                // Edge (u, v): contributes to v when gathering over IN,
                // to u when gathering over OUT.
                if g_in && active[e.dst as usize] {
                    let contrib = prog.gather_edge(g, e.dst, e.src, &data[e.src as usize]);
                    merge_into(prog, &mut acc[e.dst as usize], contrib);
                    compute_ns[machine] += opts.cost.ns_per_edge_op;
                    if !opts.sender_side_aggregation {
                        let master = placement.masters[e.dst as usize] as usize;
                        if master != machine {
                            gather_messages += 1;
                            let len = encoded_len(P::GATHER_BYTES) as u64;
                            sent_bytes[machine] += len;
                            recv_bytes[master] += len;
                        }
                    }
                }
                if g_out && active[e.src as usize] {
                    let contrib = prog.gather_edge(g, e.src, e.dst, &data[e.dst as usize]);
                    merge_into(prog, &mut acc[e.src as usize], contrib);
                    compute_ns[machine] += opts.cost.ns_per_edge_op;
                    if !opts.sender_side_aggregation {
                        let master = placement.masters[e.src as usize] as usize;
                        if master != machine {
                            gather_messages += 1;
                            let len = encoded_len(P::GATHER_BYTES) as u64;
                            sent_bytes[machine] += len;
                            recv_bytes[master] += len;
                        }
                    }
                }
            }
        }
        // Aggregated gather partials: one per (active vertex, mirror
        // machine holding gather edges).
        if opts.sender_side_aggregation {
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                placement.gather_partial_parts_into(v as u32, g_in, g_out, &mut parts_buf);
                for &machine in parts_buf.iter() {
                    gather_messages += 1;
                    let len = encoded_len(P::GATHER_BYTES) as u64;
                    sent_bytes[machine as usize] += len;
                    recv_bytes[placement.masters[v] as usize] += len;
                }
            }
        }

        // ---- Apply phase --------------------------------------------------
        let mut changed = vec![false; n];
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let master = placement.masters[v] as usize;
            compute_ns[master] += opts.cost.ns_per_apply;
            let total = acc[v].take().unwrap_or_else(|| prog.gather_identity());
            let new = prog.apply(g, v as u32, &data[v], total, iteration);
            if new != data[v] {
                changed[v] = true;
                data[v] = new;
            } else if seeded[v] && iteration == 0 {
                // Seeding rule: the initial frontier propagates even when
                // apply leaves the value unchanged (e.g. the SSSP source
                // keeps distance 0 but must still announce it).
                changed[v] = true;
            }
        }

        // ---- Update / scatter phase ---------------------------------------
        let mut next_active = vec![false; n];
        #[allow(clippy::needless_range_loop)] // v indexes four parallel arrays
        for v in 0..n {
            if !changed[v] {
                continue;
            }
            // Vertex-data updates to mirrors that future gathers read.
            placement.update_target_parts_into(v as u32, g_in, g_out, &mut parts_buf);
            let master = placement.masters[v] as usize;
            for &machine in parts_buf.iter() {
                update_messages += 1;
                let len = encoded_len(P::DATA_BYTES) as u64;
                sent_bytes[master] += len;
                recv_bytes[machine as usize] += len;
            }
            // Activation along the scatter direction; the scatter edge
            // work executes on the machine storing each edge.
            if prog.activates_on_change() {
                if scatter_dir.uses_out() {
                    let range = g.out_edge_range(v as u32);
                    for (idx, &w) in range.clone().zip(g.out_neighbors(v as u32)) {
                        next_active[w as usize] = true;
                        compute_ns[placement.edge_parts[idx] as usize] += opts.cost.ns_per_edge_op;
                    }
                }
                if scatter_dir.uses_in() {
                    for &w in g.in_neighbors(v as u32) {
                        next_active[w as usize] = true;
                        // sgp-lint: allow(no-panic-in-lib): w came from g.in_neighbors(v), so the CSR edge (w, v) exists by construction
                        let idx = g.edge_index(w, v as u32).expect("in-edge exists");
                        compute_ns[placement.edge_parts[idx] as usize] += opts.cost.ns_per_edge_op;
                    }
                }
            }
        }

        // ---- Barrier: iteration wall time ----------------------------------
        let mut wall: f64 = 0.0;
        let mut machine_bytes = vec![0u64; k];
        for m in 0..k {
            machine_bytes[m] = sent_bytes[m] + recv_bytes[m];
            let net_ns = machine_bytes[m] as f64 / opts.cost.bytes_per_second * 1e9;
            wall = wall.max(compute_ns[m] + net_ns);
            machine_total_ns[m] += compute_ns[m];
        }
        wall += opts.cost.barrier_ns;
        if let Some(state) = fault_state.as_mut() {
            let crashes_before = state.summary.crashes;
            let recovery_bytes_before = state.summary.recovery_bytes;
            let recovery_ns_before = state.summary.recovery_ns;
            wall = state.charge_iteration(
                g,
                placement,
                &opts.cost,
                &compute_ns,
                &machine_bytes,
                total_wall_ns,
                wall,
                P::DATA_BYTES,
            );
            if sink.enabled() && state.summary.crashes > crashes_before {
                let recovery_ns = state.summary.recovery_ns - recovery_ns_before;
                sink.span_enter(keys::ENGINE_FAULT_RECOVERY, iteration as u64, iter_start_stamp);
                sink.span_exit(
                    keys::ENGINE_FAULT_RECOVERY,
                    iteration as u64,
                    iter_start_stamp + recovery_ns as u64,
                );
                sink.counter_add(
                    keys::ENGINE_FAULT_CRASHES,
                    iteration as u64,
                    (state.summary.crashes - crashes_before) as u64,
                );
                sink.counter_add(
                    keys::ENGINE_FAULT_RECOVERY_BYTES,
                    iteration as u64,
                    state.summary.recovery_bytes - recovery_bytes_before,
                );
            }
        }
        total_wall_ns += wall;

        if sink.enabled() {
            sink.counter_add(keys::ENGINE_ACTIVE_VERTICES, iteration as u64, active_count as u64);
            sink.counter_add(keys::ENGINE_GATHER_MESSAGES, iteration as u64, gather_messages);
            sink.counter_add(keys::ENGINE_UPDATE_MESSAGES, iteration as u64, update_messages);
            sink.counter_add(
                keys::ENGINE_NETWORK_BYTES,
                iteration as u64,
                sent_bytes.iter().sum::<u64>(),
            );
            for m in 0..k {
                sink.counter_add(keys::ENGINE_MACHINE_BYTES, m as u64, machine_bytes[m]);
                sink.counter_add(keys::ENGINE_MACHINE_COMPUTE_NS, m as u64, compute_ns[m] as u64);
                // Barrier wait: how long machine m idles between finishing
                // its own compute+network and the (fault-inflated) barrier.
                let net_ns = machine_bytes[m] as f64 / opts.cost.bytes_per_second * 1e9;
                let wait = (wall - (compute_ns[m] + net_ns)).max(0.0);
                sink.histogram_record(keys::ENGINE_BARRIER_WAIT_NS, m as u64, wait as u64);
            }
        }

        iterations.push(IterationStats {
            active_vertices: active_count,
            gather_messages,
            update_messages,
            network_bytes: sent_bytes.iter().sum::<u64>(),
            machine_compute_ns: compute_ns,
            machine_bytes,
            wall_ns: wall,
        });
        sink.span_exit(keys::ENGINE_SUPERSTEP, iteration as u64, total_wall_ns as u64);

        seeded.fill(false);
        if prog.all_active() {
            active.fill(true);
        } else {
            active = next_active;
        }
    }

    sink.span_exit(keys::ENGINE_RUN, 0, total_wall_ns as u64);
    let report = RunReport {
        program: prog.name(),
        machines: k,
        replication_factor: placement.replication_factor(),
        iterations,
        machine_compute_ns: machine_total_ns,
        total_wall_ns,
        fault: fault_state.map(|s| s.summary),
    };
    (data, report)
}

fn merge_into<P: VertexProgram>(prog: &P, slot: &mut Option<P::Gather>, contrib: P::Gather) {
    *slot = Some(match slot.take() {
        Some(existing) => prog.merge(existing, contrib),
        None => contrib,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{PageRank, Sssp, Wcc};
    use crate::reference;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
    use sgp_graph::{GraphBuilder, StreamOrder};
    use sgp_partition::{partition, Algorithm, PartitionerConfig, Partitioning};

    fn any_graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 300, edges: 1800, seed: 21 })
    }

    fn placement_for(g: &Graph, alg: Algorithm, k: usize) -> Placement {
        let cfg = PartitionerConfig::new(k);
        let p = partition(g, alg, &cfg, StreamOrder::Random { seed: 5 });
        Placement::build(g, &p)
    }

    #[test]
    fn pagerank_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::pagerank(&g, 20);
        for alg in [Algorithm::EcrHash, Algorithm::Hdrf, Algorithm::Ginger, Algorithm::Metis] {
            let pl = placement_for(&g, alg, 4);
            let (ranks, _) = run_program(&g, &pl, &PageRank::new(20), &EngineOptions::default());
            for (v, (&a, &b)) in ranks.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * b.abs().max(1.0),
                    "{alg:?}: rank mismatch at {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn wcc_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::wcc(&g);
        for alg in
            [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::Hdrf, Algorithm::HybridRandom]
        {
            let pl = placement_for(&g, alg, 4);
            let (labels, _) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
            assert_eq!(labels, reference, "{alg:?}");
        }
    }

    #[test]
    fn sssp_matches_reference_on_all_cut_models() {
        let g = any_graph();
        let reference = reference::sssp(&g, 0);
        for alg in [Algorithm::Ldg, Algorithm::Dbh, Algorithm::Grid] {
            let pl = placement_for(&g, alg, 4);
            let (dist, _) = run_program(&g, &pl, &Sssp::new(0), &EngineOptions::default());
            assert_eq!(dist, reference, "{alg:?}");
        }
    }

    #[test]
    fn pagerank_runs_exactly_fixed_iterations() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(7), &EngineOptions::default());
        assert_eq!(report.num_iterations(), 7);
        assert!(report.iterations.iter().all(|i| i.active_vertices == g.num_vertices()));
    }

    #[test]
    fn edge_cut_pagerank_has_no_update_messages() {
        // Appendix B: with out-edges grouped at the master, PageRank's
        // scatter is local — only gather partials cross the network.
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
        let updates: u64 = report.iterations.iter().map(|i| i.update_messages).sum();
        assert_eq!(updates, 0, "edge-cut PageRank must not send vertex updates");
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn vertex_cut_pagerank_sends_updates() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::VcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
        let updates: u64 = report.iterations.iter().map(|i| i.update_messages).sum();
        assert!(updates > 0, "vertex-cut PageRank must synchronize mirrors");
    }

    #[test]
    fn edge_cut_cheaper_than_vertex_cut_per_rf_for_pagerank() {
        // The headline of Fig. 1(a): per unit of replication factor,
        // edge-cut placements move fewer bytes for PageRank.
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 1000, edges: 8000, seed: 9 });
        let ec = placement_for(&g, Algorithm::EcrHash, 8);
        let vc = placement_for(&g, Algorithm::VcrHash, 8);
        let (_, rec) = run_program(&g, &ec, &PageRank::new(5), &EngineOptions::default());
        let (_, rvc) = run_program(&g, &vc, &PageRank::new(5), &EngineOptions::default());
        let slope_ec = rec.total_network_bytes() as f64 / (rec.replication_factor - 1.0).max(1e-9);
        let slope_vc = rvc.total_network_bytes() as f64 / (rvc.replication_factor - 1.0).max(1e-9);
        assert!(
            slope_ec < slope_vc,
            "edge-cut slope {slope_ec} should undercut vertex-cut slope {slope_vc}"
        );
    }

    #[test]
    fn aggregation_reduces_messages() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let with = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default()).1;
        let without = run_program(
            &g,
            &pl,
            &PageRank::new(3),
            &EngineOptions { sender_side_aggregation: false, ..Default::default() },
        )
        .1;
        assert!(
            with.total_messages() < without.total_messages(),
            "aggregation must reduce message count ({} vs {})",
            with.total_messages(),
            without.total_messages()
        );
    }

    #[test]
    fn single_machine_run_sends_nothing() {
        let g = any_graph();
        let p = Partitioning::from_vertex_owners(&g, 1, vec![0; g.num_vertices()]);
        let pl = Placement::build(&g, &p);
        let (_, report) = run_program(&g, &pl, &PageRank::new(5), &EngineOptions::default());
        assert_eq!(report.total_messages(), 0);
        assert_eq!(report.total_network_bytes(), 0);
        assert!(report.total_wall_ns > 0.0);
    }

    #[test]
    fn wcc_active_set_shrinks() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let (_, report) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
        let first = report.iterations.first().expect("at least one iteration").active_vertices;
        let last = report.iterations.last().expect("at least one iteration").active_vertices;
        assert_eq!(first, g.num_vertices(), "WCC starts all-active");
        assert!(last < first, "WCC frontier must shrink");
    }

    #[test]
    fn sssp_frontier_grows_then_shrinks() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1, 0]);
        let pl = Placement::build(&g, &p);
        let (dist, report) = run_program(&g, &pl, &Sssp::new(0), &EngineOptions::default());
        assert_eq!(dist, vec![0, 1, 1, 2, 3]);
        let actives: Vec<usize> = report.iterations.iter().map(|i| i.active_vertices).collect();
        assert_eq!(actives[0], 1, "SSSP starts from the source only");
        assert!(actives.iter().max().unwrap() > &1, "frontier must expand");
    }

    #[test]
    fn per_machine_compute_sums_are_positive_everywhere() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::VcrHash, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(5), &EngineOptions::default());
        assert_eq!(report.machine_compute_ns.len(), 4);
        assert!(report.machine_compute_ns.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn healthy_fault_plan_changes_nothing_but_tags_the_report() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::Hdrf, 4);
        let opts = EngineOptions::default();
        let (data, healthy) = run_program(&g, &pl, &PageRank::new(5), &opts);
        let plan = FaultPlan::healthy(4, 1);
        let (fdata, faulted) = run_program_with_faults(&g, &pl, &PageRank::new(5), &opts, &plan);
        assert_eq!(data, fdata, "pause-and-recover must not change results");
        assert_eq!(healthy.total_wall_ns, faulted.total_wall_ns);
        assert!(healthy.fault.is_none());
        let summary = faulted.fault.expect("faulted run reports a summary");
        assert_eq!(summary, FaultSummary::default());
    }

    #[test]
    fn straggler_inflates_wall_time_only() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let opts = EngineOptions::default();
        let (data, healthy) = run_program(&g, &pl, &PageRank::new(5), &opts);
        let plan = FaultPlan::healthy(4, 1).with_straggler(0, 0, u64::MAX, 3.0);
        let (fdata, faulted) = run_program_with_faults(&g, &pl, &PageRank::new(5), &opts, &plan);
        assert_eq!(data, fdata);
        assert!(
            faulted.total_wall_ns > healthy.total_wall_ns,
            "a 3x straggler must slow the barrier: {} vs {}",
            faulted.total_wall_ns,
            healthy.total_wall_ns
        );
        let summary = faulted.fault.expect("summary present");
        assert!(summary.straggler_extra_ns > 0.0);
        assert_eq!(summary.crashes, 0);
        let extra = faulted.total_wall_ns - healthy.total_wall_ns;
        assert!((summary.straggler_extra_ns - extra).abs() < 1e-6 * extra.max(1.0));
    }

    #[test]
    fn crash_recovers_replicated_masters_from_mirrors() {
        // Vertex-cut placements replicate heavily, so most of a crashed
        // machine's masters are restored by state transfer; an edge-cut
        // placement leaves unreplicated masters to recompute.
        let g = any_graph();
        let opts = EngineOptions::default();
        let plan = FaultPlan::healthy(4, 1).with_crash(2, 0);
        let pl_vc = placement_for(&g, Algorithm::VcrHash, 4);
        let (data, faulted) = run_program_with_faults(&g, &pl_vc, &PageRank::new(5), &opts, &plan);
        let (hdata, healthy) = run_program(&g, &pl_vc, &PageRank::new(5), &opts);
        assert_eq!(data, hdata, "crash recovery must not change results");
        let s = faulted.fault.expect("summary present");
        assert_eq!(s.crashes, 1);
        assert!(s.recovered_vertices > 0, "vertex-cut masters have mirrors");
        assert!(s.recovery_bytes > 0);
        assert!(faulted.total_wall_ns > healthy.total_wall_ns);
        assert!((faulted.total_wall_ns - healthy.total_wall_ns - s.recovery_ns).abs() < 1e-3);

        // Two disconnected triangles, one per machine: every vertex is
        // internal (no mirrors), so a crash forces pure recomputation.
        let g2 = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 3)
            .build();
        let p2 = Partitioning::from_vertex_owners(&g2, 2, vec![0, 0, 0, 1, 1, 1]);
        let pl2 = Placement::build(&g2, &p2);
        let plan2 = FaultPlan::healthy(2, 1).with_crash(1, 0);
        let (_, ec) = run_program_with_faults(&g2, &pl2, &PageRank::new(3), &opts, &plan2);
        let se = ec.fault.expect("summary present");
        assert_eq!(se.recomputed_vertices, 3, "machine 1's masters have no mirrors");
        assert_eq!(se.recovered_vertices, 0);
        assert_eq!(se.recovery_bytes, 0);
        assert!(se.recovery_ns > 0.0, "recomputation must cost time");
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::Hdrf, 4);
        let opts = EngineOptions::default();
        let plan = FaultPlan::healthy(4, 77).with_recovering_crash(1, 0, 1_000_000).with_straggler(
            3,
            0,
            u64::MAX,
            2.5,
        );
        let (da, ra) = run_program_with_faults(&g, &pl, &PageRank::new(5), &opts, &plan);
        let (db, rb) = run_program_with_faults(&g, &pl, &PageRank::new(5), &opts, &plan);
        assert_eq!(da, db);
        assert_eq!(ra.total_wall_ns, rb.total_wall_ns);
        assert_eq!(ra.fault, rb.fault);
    }

    #[test]
    fn traced_run_matches_untraced_and_counters_match_report() {
        use sgp_trace::CollectingSink;
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::Hdrf, 4);
        let opts = EngineOptions::default();
        let (data, report) = run_program(&g, &pl, &PageRank::new(5), &opts);
        let mut sink = CollectingSink::new();
        let (tdata, treport) = run_program_traced(&g, &pl, &PageRank::new(5), &opts, &mut sink);
        assert_eq!(data, tdata, "tracing must not perturb results");
        assert_eq!(report.total_wall_ns, treport.total_wall_ns);
        sink.check_nesting().expect("well-formed span nesting");
        assert_eq!(
            sink.counter_total(keys::ENGINE_GATHER_MESSAGES),
            report.iterations.iter().map(|i| i.gather_messages).sum::<u64>()
        );
        assert_eq!(
            sink.counter_total(keys::ENGINE_UPDATE_MESSAGES),
            report.iterations.iter().map(|i| i.update_messages).sum::<u64>()
        );
        assert_eq!(
            sink.counter_total(keys::ENGINE_NETWORK_BYTES),
            report.iterations.iter().map(|i| i.network_bytes).sum::<u64>()
        );
        assert_eq!(
            sink.counter_total(keys::ENGINE_ACTIVE_VERTICES),
            report.iterations.iter().map(|i| i.active_vertices as u64).sum::<u64>()
        );
    }

    #[test]
    fn traced_fault_run_records_crash_events() {
        use sgp_trace::CollectingSink;
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::VcrHash, 4);
        let opts = EngineOptions::default();
        let plan = FaultPlan::healthy(4, 1).with_crash(2, 0);
        let mut sink = CollectingSink::new();
        let (_, report) =
            run_program_with_faults_traced(&g, &pl, &PageRank::new(5), &opts, &plan, &mut sink);
        let summary = report.fault.expect("faulted run reports a summary");
        assert_eq!(sink.counter_total(keys::ENGINE_FAULT_CRASHES), summary.crashes as u64);
        assert_eq!(sink.counter_total(keys::ENGINE_FAULT_RECOVERY_BYTES), summary.recovery_bytes);
        sink.check_nesting().expect("well-formed span nesting");
    }

    #[test]
    #[should_panic(expected = "fault plan must match the placement")]
    fn mismatched_fault_plan_panics() {
        let g = any_graph();
        let pl = placement_for(&g, Algorithm::EcrHash, 4);
        let plan = FaultPlan::healthy(8, 1);
        run_program_with_faults(&g, &pl, &PageRank::new(2), &EngineOptions::default(), &plan);
    }
}
