//! Engine invariants across placements: conservation laws of the
//! message accounting and the Appendix-B communication identities.

use sgp_engine::apps::{PageRank, Sssp, Wcc};
use sgp_engine::{reference, run_program, EngineOptions, Placement};
use sgp_graph::generators::{rmat, RmatConfig};
use sgp_graph::{Graph, GraphBuilder, StreamOrder};
use sgp_partition::{partition, Algorithm, PartitionerConfig, Partitioning};

fn graph() -> Graph {
    rmat(RmatConfig { scale: 9, edge_factor: 8, ..RmatConfig::default() })
}

fn placement(g: &Graph, alg: Algorithm, k: usize) -> Placement {
    let cfg = PartitionerConfig::new(k);
    Placement::build(g, &partition(g, alg, &cfg, StreamOrder::Random { seed: 3 }))
}

/// For an all-active PageRank iteration with aggregation, the gather
/// message count per iteration equals exactly Σ_v |gather mirrors of v|
/// — i.e. it is iteration-invariant.
#[test]
fn pagerank_message_count_is_iteration_invariant() {
    let g = graph();
    for alg in [Algorithm::EcrHash, Algorithm::Hdrf] {
        let pl = placement(&g, alg, 4);
        let (_, report) = run_program(&g, &pl, &PageRank::new(5), &EngineOptions::default());
        let first = report.iterations[0].gather_messages;
        for it in &report.iterations {
            assert_eq!(it.gather_messages, first, "{alg:?}");
        }
    }
}

/// The Appendix-B identity: for edge-cut placements, the PageRank
/// per-iteration gather message count equals n·(RF − 1).
#[test]
fn edge_cut_gather_messages_equal_mirror_count() {
    let g = graph();
    let pl = placement(&g, Algorithm::Ldg, 8);
    let total_mirrors: usize = (0..g.num_vertices()).map(|v| pl.replicas[v].len() - 1).sum();
    let (_, report) = run_program(&g, &pl, &PageRank::new(2), &EngineOptions::default());
    assert_eq!(report.iterations[0].gather_messages as usize, total_mirrors);
    assert_eq!(report.iterations[0].update_messages, 0);
}

/// Messages without aggregation for edge-cut PageRank equal the number
/// of cut edges (Fig. 10(a)'s semantics).
#[test]
fn unaggregated_messages_equal_cut_edges() {
    let g = graph();
    let cfg = PartitionerConfig::new(8);
    let p = partition(&g, Algorithm::Ldg, &cfg, StreamOrder::Random { seed: 3 });
    let owner = p.vertex_owner.clone().unwrap();
    let cut_edges = g.edges().filter(|e| owner[e.src as usize] != owner[e.dst as usize]).count();
    let pl = Placement::build(&g, &p);
    let opts = EngineOptions { sender_side_aggregation: false, ..Default::default() };
    let (_, report) = run_program(&g, &pl, &PageRank::new(1), &opts);
    assert_eq!(report.iterations[0].gather_messages as usize, cut_edges);
}

/// Wall time is monotone in the barrier constant; bytes are invariant.
#[test]
fn cost_model_scales_time_not_bytes() {
    let g = graph();
    let pl = placement(&g, Algorithm::VcrHash, 4);
    let mut slow = EngineOptions::default();
    slow.cost.barrier_ns *= 100.0;
    let (_, fast_report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
    let (_, slow_report) = run_program(&g, &pl, &PageRank::new(3), &slow);
    assert!(slow_report.total_wall_ns > fast_report.total_wall_ns);
    assert_eq!(slow_report.total_network_bytes(), fast_report.total_network_bytes());
    assert_eq!(slow_report.total_messages(), fast_report.total_messages());
}

/// k = n placements (one vertex's edges everywhere) still compute
/// correctly.
#[test]
fn extreme_k_still_correct() {
    let g = GraphBuilder::new()
        .add_edge(0, 1)
        .add_edge(1, 2)
        .add_edge(2, 3)
        .add_edge(3, 0)
        .add_edge(0, 2)
        .build();
    let k = g.num_edges();
    let parts: Vec<u32> = (0..k as u32).collect();
    let p = Partitioning::from_edge_parts(&g, k, parts);
    let pl = Placement::build(&g, &p);
    let (wcc, _) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
    assert_eq!(wcc, reference::wcc(&g));
    let (dist, _) = run_program(&g, &pl, &Sssp::new(0), &EngineOptions::default());
    assert_eq!(dist, reference::sssp(&g, 0));
}

/// SSSP from an isolated source terminates after one iteration.
#[test]
fn sssp_isolated_source_terminates() {
    let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(4).build();
    let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1]);
    let pl = Placement::build(&g, &p);
    let (dist, report) = run_program(&g, &pl, &Sssp::new(3), &EngineOptions::default());
    assert_eq!(dist[3], 0);
    assert!(dist[0] == u64::MAX && dist[1] == u64::MAX);
    assert!(report.num_iterations() <= 2);
}

/// WCC on a graph with an isolated vertex labels it as itself.
#[test]
fn wcc_isolated_vertex_self_labelled() {
    let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(3).build();
    let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 1]);
    let pl = Placement::build(&g, &p);
    let (labels, _) = run_program(&g, &pl, &Wcc::new(), &EngineOptions::default());
    assert_eq!(labels, vec![0, 0, 2]);
}

/// The per-iteration machine byte accounting sums to twice the total
/// (every byte is counted at its sender and its receiver).
#[test]
fn byte_accounting_balances() {
    let g = graph();
    let pl = placement(&g, Algorithm::Hdrf, 4);
    let (_, report) = run_program(&g, &pl, &PageRank::new(3), &EngineOptions::default());
    for it in &report.iterations {
        let machine_sum: u64 = it.machine_bytes.iter().sum();
        assert_eq!(machine_sum, 2 * it.network_bytes);
    }
}

/// Hybrid placements (Ginger) sit between the cut models on PageRank
/// update traffic: fewer updates than vertex-cut, more than edge-cut.
#[test]
fn hybrid_updates_between_cut_models() {
    let g = graph();
    let updates = |alg| {
        let pl = placement(&g, alg, 8);
        let (_, r) = run_program(&g, &pl, &PageRank::new(2), &EngineOptions::default());
        r.iterations.iter().map(|i| i.update_messages).sum::<u64>()
    };
    let ec = updates(Algorithm::Ldg);
    let hy = updates(Algorithm::Ginger);
    let vc = updates(Algorithm::VcrHash);
    assert_eq!(ec, 0);
    assert!(hy > ec, "hybrid must pay some updates");
    assert!(hy < vc, "hybrid updates {hy} should undercut vertex-cut {vc}");
}
