//! The canonical trace-key registry.
//!
//! Every key passed to a [`TraceSink`](crate::TraceSink) method by the
//! instrumented crates (`sgp-partition`, `sgp-engine`, `sgp-db`,
//! `sgp-core`) must be one of these constants — `sgp-xtask lint`
//! enforces it with the `trace-key-registry` rule, in both directions:
//! a hardcoded string literal at a call site is an error, and a
//! registry constant no crate references is an error. That pins the
//! trace schema to one source of truth: renaming a key here is the
//! *only* way to rename it anywhere, and the byte-exact trace goldens
//! under `tests/goldens/` catch the rename in the same change.
//!
//! Naming convention: `<layer>.<metric>` with the emitting layer as the
//! prefix (`partition.`, `engine.`, `db.`). The values are part of the
//! exported JSON schema (see [`SCHEMA_VERSION`](crate::SCHEMA_VERSION))
//! and must never change without a schema bump.

// ---------------------------------------------------------------------------
// sgp-partition: streaming partitioner instrumentation
// ---------------------------------------------------------------------------

/// Root span around one partitioner run (keyed by algorithm id).
pub const PARTITION_RUN: &str = "partition.run";
/// Span around one full pass over the edge/vertex stream.
pub const PARTITION_STREAM: &str = "partition.stream";
/// Span around one restreaming pass (keyed by pass index).
pub const PARTITION_PASS: &str = "partition.pass";
/// Counter: vertices placed so far (stamped with the decision seq).
pub const PARTITION_VERTICES_PLACED: &str = "partition.vertices_placed";
/// Counter: edges placed so far (stamped with the decision seq).
pub const PARTITION_EDGES_PLACED: &str = "partition.edges_placed";
/// Counter: per-partition load (keyed by partition id).
pub const PARTITION_LOAD: &str = "partition.load";
/// Counter: placements that fell through to the balance tiebreak.
pub const PARTITION_BALANCE_TIEBREAKS: &str = "partition.balance_tiebreaks";
/// Counter: placements forced off a full partition by capacity.
pub const PARTITION_CAPACITY_FALLBACKS: &str = "partition.capacity_fallbacks";
/// Counter: vertices routed down the high-degree path (hybrid cuts).
pub const PARTITION_DEGREE_THRESHOLD_HITS: &str = "partition.degree_threshold_hits";
/// Counter: mirror vertices created by vertex-cut placement.
pub const PARTITION_MIRROR_CREATIONS: &str = "partition.mirror_creations";
/// Counter: total vertex replicas created (replication-factor numerator).
pub const PARTITION_REPLICAS_CREATED: &str = "partition.replicas_created";
/// Counter: worker threads of one threaded-execution run.
pub const PARTITION_EXEC_THREADS: &str = "partition.exec_threads";
/// Counter: synchronization-barrier rounds of one threaded run.
pub const PARTITION_EXEC_BARRIER_ROUNDS: &str = "partition.exec_barrier_rounds";
/// Counter: accepted restreaming rounds of one bounded-movement
/// repartitioning run (dynamic-graph tier, DESIGN.md §12).
pub const PARTITION_RESTREAM_ROUNDS: &str = "partition.restream_rounds";
/// Counter: churn batches ingested by one churn-suite run.
pub const PARTITION_CHURN_BATCHES: &str = "partition.churn_batches";
/// Counter: repartitioning triggers fired during one churn-suite run.
pub const PARTITION_CHURN_REPARTITIONS: &str = "partition.churn_repartitions";
/// Counter: vertex masters moved by repartitioning during one
/// churn-suite run.
pub const PARTITION_CHURN_MOVED: &str = "partition.churn_moved";

// ---------------------------------------------------------------------------
// sgp-engine: Pregel-style execution engine instrumentation
// ---------------------------------------------------------------------------

/// Root span around one engine run.
pub const ENGINE_RUN: &str = "engine.run";
/// Span around one superstep (keyed by iteration).
pub const ENGINE_SUPERSTEP: &str = "engine.superstep";
/// Span around crash-triggered recovery within a superstep.
pub const ENGINE_FAULT_RECOVERY: &str = "engine.fault_recovery";
/// Counter: vertices active this superstep (keyed by iteration).
pub const ENGINE_ACTIVE_VERTICES: &str = "engine.active_vertices";
/// Counter: gather-phase messages this superstep.
pub const ENGINE_GATHER_MESSAGES: &str = "engine.gather_messages";
/// Counter: update-phase messages this superstep.
pub const ENGINE_UPDATE_MESSAGES: &str = "engine.update_messages";
/// Counter: total bytes crossing the network this superstep.
pub const ENGINE_NETWORK_BYTES: &str = "engine.network_bytes";
/// Counter: per-machine bytes sent+received (keyed by machine id).
pub const ENGINE_MACHINE_BYTES: &str = "engine.machine_bytes";
/// Counter: per-machine compute nanoseconds (keyed by machine id).
pub const ENGINE_MACHINE_COMPUTE_NS: &str = "engine.machine_compute_ns";
/// Histogram: per-machine idle wait at the superstep barrier.
pub const ENGINE_BARRIER_WAIT_NS: &str = "engine.barrier_wait_ns";
/// Counter: machine crashes injected this superstep.
pub const ENGINE_FAULT_CRASHES: &str = "engine.fault_crashes";
/// Counter: bytes replayed to recover crashed machines.
pub const ENGINE_FAULT_RECOVERY_BYTES: &str = "engine.fault_recovery_bytes";

// ---------------------------------------------------------------------------
// sgp-db: graph-database cluster simulator instrumentation
// ---------------------------------------------------------------------------

/// Root span around one cluster-simulation run.
pub const DB_RUN: &str = "db.run";
/// Span around one query's lifetime (keyed by trace index).
pub const DB_QUERY: &str = "db.query";
/// Counter: per-machine storage reads (keyed by machine id).
pub const DB_READS: &str = "db.reads";
/// Counter: per-machine crash recoveries (keyed by machine id).
pub const DB_RECOVERIES: &str = "db.recoveries";
/// Counter: reads redirected to a replica after a crash.
pub const DB_FAILOVERS: &str = "db.failovers";
/// Counter: messages dropped at a crashed machine.
pub const DB_DROPPED_MESSAGES: &str = "db.dropped_messages";
/// Counter: queries enqueued behind a busy machine.
pub const DB_QUEUE_ENQUEUED: &str = "db.queue_enqueued";
/// Histogram: FIFO depth observed at enqueue (keyed by machine id).
pub const DB_QUEUE_DEPTH: &str = "db.queue_depth";
/// Counter: query retries after a mid-flight crash.
pub const DB_RETRIES: &str = "db.retries";
/// Counter: machine crashes injected (keyed by machine id).
pub const DB_CRASHES: &str = "db.crashes";
/// Counter: queries that completed successfully (fault simulator).
pub const DB_QUERIES_OK: &str = "db.queries_ok";
/// Counter: queries that exhausted their retry budget.
pub const DB_QUERIES_FAILED: &str = "db.queries_failed";
/// Counter: queries completed (fault-free simulator).
pub const DB_QUERIES_COMPLETED: &str = "db.queries_completed";
/// Histogram: end-to-end query latency in simulated nanoseconds.
pub const DB_QUERY_LATENCY_NS: &str = "db.query_latency_ns";
/// Counter: membership changes applied (keyed by machine id).
pub const DB_MEMBERSHIP_EVENTS: &str = "db.membership_events";
/// Counter: migration records shipped during rebalance (keyed by
/// machine id).
pub const DB_DATA_MOVED: &str = "db.data_moved";
/// Counter: shares fast-rejected by admission control while degraded
/// (keyed by machine id).
pub const DB_SHED_QUERIES: &str = "db.shed_queries";
/// Histogram: per-event recovery time in simulated nanoseconds (keyed
/// by machine id).
pub const DB_RECOVERY_NS: &str = "db.recovery_ns";
