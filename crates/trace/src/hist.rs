//! Fixed-bucket log₂ histogram.
//!
//! 65 buckets: bucket 0 holds the value 0; bucket `i` (1..=64) holds
//! values `v` with `floor(log2 v) == i - 1`, i.e. `2^(i-1) ..= 2^i - 1`
//! (bucket 64 is capped at `u64::MAX`). Recording is one shift and one
//! add, so histograms are cheap enough for per-event use inside the
//! simulators. Quantile *estimates* are bucket-resolution: they are
//! guaranteed to land in the same bucket as the exact rank-selected
//! sample (see the workspace proptests), not to equal it.

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-size log₂-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => 1u64 << 63,
        i => 1u64 << (i - 1),
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_index(value)) {
            *b += 1;
        }
        self.count += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact; the sum is kept in full
    /// precision, only this accessor converts to float).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets.get(index).copied().unwrap_or(0)
    }

    /// Iterator over `(bucket_index, occupancy)` for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// Bucket-resolution quantile estimate for `q` in `[0, 1]`.
    ///
    /// Uses the same rank convention as
    /// [`crate::stats::percentile_sorted_ns`] — `rank = round((n-1)·q)`
    /// — then returns the upper bound of the bucket containing that
    /// rank, clamped to the observed maximum. The estimate therefore
    /// always lands in the same log₂ bucket as the exact rank-selected
    /// sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return bucket_upper_bound(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Median estimate (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.2).abs() < 1e-12);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(10), 1); // 1000 lies in 512..=1023
    }

    #[test]
    fn bucket_occupancy_is_exact() {
        let mut h = Log2Histogram::new();
        for v in [7u64, 8] {
            h.record(v);
        }
        assert_eq!(h.bucket(3), 1); // 4..=7
        assert_eq!(h.bucket(4), 1); // 8..=15
    }

    #[test]
    fn quantile_same_bucket_as_exact() {
        let mut h = Log2Histogram::new();
        let mut raw: Vec<u64> = (0..200u64).map(|i| i * i % 977).collect();
        for &v in &raw {
            h.record(v);
        }
        raw.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((raw.len() - 1) as f64 * q).round() as usize;
            let exact = raw[rank];
            let est = h.quantile(q);
            assert_eq!(bucket_index(est), bucket_index(exact), "q={q}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn merge_is_sum() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut all = Log2Histogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..30u64 {
            b.record(v * 17 + 1);
            all.record(v * 17 + 1);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
