//! Deterministic observability layer for the SGP reproduction.
//!
//! Both simulators (the PowerLyra-like engine and the JanusGraph-like
//! DES) and the streaming partitioners emit *events* — spans, monotonic
//! counters, and log₂-bucket histogram samples — into a [`TraceSink`].
//! Three sinks are provided:
//!
//! * [`NullSink`] — the default; every method is an empty inlineable
//!   body, so untraced runs pay (near) zero cost;
//! * [`CollectingSink`] — records every event in order and exports a
//!   byte-stable JSON document (see [`json`]) for golden tests and the
//!   `sgp-xtask trace-summary` renderer;
//! * [`SummarySink`] — streaming aggregation only (per-span self-cost,
//!   counter totals, histograms), never the raw event stream.
//!
//! # Determinism rules
//!
//! Every stamp is **simulated time or a logical sequence number** —
//! never wallclock — so identical seeds yield byte-identical traces.
//! This crate is inside the `no-wallclock-in-sim`, `no-hash-iteration`,
//! and `no-panic-in-lib` scopes of `sgp-xtask lint`: no `Instant`, no
//! `SystemTime`, no `HashMap` iteration, no panicking calls. All JSON
//! payloads are integers (no floats), so the export has a single
//! canonical rendering.
//!
//! The [`stats`] module additionally hosts the one shared
//! latency-percentile implementation used by both `sgp-db` simulators
//! (exact, float-typed — distinct from the bucketed histogram
//! estimates, which are only guaranteed to land within one log₂ bucket
//! of the exact quantile).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod guard;
pub mod hist;
pub mod json;
pub mod keys;
pub mod sink;
pub mod stats;

pub use guard::{SpanGuard, SpanGuardExt};
pub use hist::Log2Histogram;
pub use json::{parse_trace, EventKind, ParsedEvent, ParsedTrace};
pub use sink::{CollectingSink, NullSink, SpanStat, SummarySink, TraceSink};
pub use stats::{latency_summary_ms, percentile_sorted_ns, LatencySummary};

/// Schema version stamped into every exported trace document.
pub const SCHEMA_VERSION: u64 = 1;

/// A deterministic event timestamp: simulated nanoseconds or a logical
/// sequence number, depending on the emitting layer. Never wallclock.
pub type Stamp = u64;

/// One recorded trace event.
///
/// `name` identifies the metric (a static string like
/// `"engine.superstep"`); `key` is an optional integer dimension
/// (machine id, superstep index, query id — `0` when unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span was entered at `stamp`.
    SpanEnter {
        /// Span name.
        name: &'static str,
        /// Dimension key (machine id, query id, ...).
        key: u64,
        /// Enter stamp.
        stamp: Stamp,
    },
    /// The matching span was exited at `stamp`.
    SpanExit {
        /// Span name.
        name: &'static str,
        /// Dimension key (must match the enter event).
        key: u64,
        /// Exit stamp (>= the enter stamp).
        stamp: Stamp,
    },
    /// A monotonic counter was incremented by `delta`.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Dimension key.
        key: u64,
        /// Increment (counters never decrease).
        delta: u64,
    },
    /// A sample was recorded into a histogram.
    Histogram {
        /// Histogram name.
        name: &'static str,
        /// Dimension key.
        key: u64,
        /// Sampled value.
        value: u64,
    },
}
