//! Linear span guards: `span_enter`/`span_exit` pairing by construction.
//!
//! The `span-guard-balance` lint statically checks that every
//! `span_enter` in an fn body is matched by an exit on the fall-through
//! path. The guard form makes the pairing structural instead: opening a
//! span hands back a [`SpanGuard`] value that *is* the obligation to
//! close it. The guard is `#[must_use]`, carries no sink borrow (the
//! sink stays free for nested events), and is consumed by
//! [`SpanGuard::exit`].
//!
//! There is deliberately **no `Drop` impl**: stamps are simulated time,
//! so only the caller knows the exit stamp — an implicit drop would
//! have to invent one, silently corrupting span durations. Dropping a
//! guard without calling `exit` leaves the span open in the trace,
//! which [`crate::SummarySink`] surfaces as an unbalanced-span error;
//! the lint's requirement that `guard_span` results are let-bound keeps
//! the obligation visible in source.

use crate::sink::TraceSink;
use crate::Stamp;

/// An open trace span. Close it with [`SpanGuard::exit`] at the exit
/// stamp; the value is the proof the span is still open.
#[must_use = "an unclosed SpanGuard leaves its span open in the trace; call .exit(sink, stamp)"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    key: u64,
}

impl SpanGuard {
    /// Closes the span at `stamp`, consuming the guard.
    pub fn exit<S: TraceSink + ?Sized>(self, sink: &mut S, stamp: Stamp) {
        sink.span_exit(self.name, self.key, stamp);
    }

    /// The static metric name this guard will close.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The key dimension this guard will close.
    pub fn key(&self) -> u64 {
        self.key
    }
}

/// Guard-returning span entry, blanket-implemented for every sink.
pub trait SpanGuardExt: TraceSink {
    /// Enters span `(name, key)` at `stamp` and returns the guard that
    /// closes it. Event-for-event identical to calling
    /// [`TraceSink::span_enter`] followed later by
    /// [`TraceSink::span_exit`] with the same `(name, key)`.
    fn guard_span(&mut self, name: &'static str, key: u64, stamp: Stamp) -> SpanGuard {
        self.span_enter(name, key, stamp);
        SpanGuard { name, key }
    }
}

impl<S: TraceSink + ?Sized> SpanGuardExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, NullSink};

    #[test]
    fn guard_emits_the_same_events_as_a_manual_pair() {
        let mut manual = CollectingSink::new();
        manual.span_enter("run", 3, 10);
        manual.counter_add("placed", 0, 7);
        manual.span_exit("run", 3, 42);

        let mut guarded = CollectingSink::new();
        let span = guarded.guard_span("run", 3, 10);
        guarded.counter_add("placed", 0, 7);
        span.exit(&mut guarded, 42);

        assert_eq!(manual.events(), guarded.events());
    }

    #[test]
    fn guard_carries_name_and_key_not_a_sink_borrow() {
        let mut sink = CollectingSink::new();
        let a = sink.guard_span("outer", 1, 0);
        let b = sink.guard_span("inner", 2, 1);
        assert_eq!((a.name(), a.key()), ("outer", 1));
        assert_eq!((b.name(), b.key()), ("inner", 2));
        // Non-LIFO close is allowed by the type; sinks that require
        // nesting (SummarySink) report it as data, not a panic.
        b.exit(&mut sink, 5);
        a.exit(&mut sink, 9);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn null_sink_guard_is_free_of_events() {
        let mut sink = NullSink;
        let span = sink.guard_span("run", 0, 0);
        span.exit(&mut sink, 1);
    }

    #[test]
    fn works_through_dyn_sink() {
        let mut sink = CollectingSink::new();
        let dynsink: &mut dyn TraceSink = &mut sink;
        let span = dynsink.guard_span("dyn", 9, 2);
        span.exit(dynsink, 3);
        assert_eq!(sink.len(), 2);
    }
}
