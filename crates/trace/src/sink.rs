//! Trace sinks: where events go.
//!
//! Instrumented code is generic over `S: TraceSink`, so the
//! [`NullSink`] path monomorphizes to empty inlined bodies and untraced
//! runs keep their existing cost profile (the `trace` bench in
//! `sgp-bench` measures exactly this overhead rather than assuming it).

use crate::hist::Log2Histogram;
use crate::json;
use crate::{Stamp, TraceEvent};
use std::collections::BTreeMap;

/// Receiver for trace events.
///
/// `name` is a static metric identifier; `key` an integer dimension
/// (machine id, query id, superstep — `0` when unused). Sinks observe
/// and never perturb: implementations must not feed anything back into
/// the instrumented computation.
pub trait TraceSink {
    /// False for sinks that discard everything; lets hot paths skip
    /// event preparation that the compiler cannot prove dead.
    fn enabled(&self) -> bool {
        true
    }
    /// A span named `name` (dimension `key`) was entered at `stamp`.
    fn span_enter(&mut self, name: &'static str, key: u64, stamp: Stamp);
    /// The innermost open span `(name, key)` was exited at `stamp`.
    fn span_exit(&mut self, name: &'static str, key: u64, stamp: Stamp);
    /// Increment the monotonic counter `(name, key)` by `delta`.
    fn counter_add(&mut self, name: &'static str, key: u64, delta: u64);
    /// Record `value` into the histogram `(name, key)`.
    fn histogram_record(&mut self, name: &'static str, key: u64, value: u64);
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn span_enter(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        (**self).span_enter(name, key, stamp);
    }
    fn span_exit(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        (**self).span_exit(name, key, stamp);
    }
    fn counter_add(&mut self, name: &'static str, key: u64, delta: u64) {
        (**self).counter_add(name, key, delta);
    }
    fn histogram_record(&mut self, name: &'static str, key: u64, value: u64) {
        (**self).histogram_record(name, key, value);
    }
}

/// The default sink: discards every event at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span_enter(&mut self, _name: &'static str, _key: u64, _stamp: Stamp) {}
    #[inline(always)]
    fn span_exit(&mut self, _name: &'static str, _key: u64, _stamp: Stamp) {}
    #[inline(always)]
    fn counter_add(&mut self, _name: &'static str, _key: u64, _delta: u64) {}
    #[inline(always)]
    fn histogram_record(&mut self, _name: &'static str, _key: u64, _value: u64) {}
}

/// Records the full event stream in order; exports byte-stable JSON.
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    events: Vec<TraceEvent>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of all increments of counter `name`, across every key.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { name: n, delta, .. } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// Sum of all increments of counter `(name, key)`.
    pub fn counter_total_keyed(&self, name: &str, key: u64) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { name: n, key: k, delta } if *n == name && *k == key => {
                    Some(*delta)
                }
                _ => None,
            })
            .sum()
    }

    /// Aggregate histogram of every sample recorded under `name`
    /// (all keys merged).
    pub fn histogram_of(&self, name: &str) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for e in &self.events {
            if let TraceEvent::Histogram { name: n, value, .. } = e {
                if *n == name {
                    h.record(*value);
                }
            }
        }
        h
    }

    /// Verify span enter/exit events are well-formed: exits match the
    /// innermost open span `(name, key)`, exit stamps are not before
    /// their enter stamps, and every span is closed.
    pub fn check_nesting(&self) -> Result<(), String> {
        let mut stack: Vec<(&'static str, u64, Stamp)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                TraceEvent::SpanEnter { name, key, stamp } => stack.push((name, key, stamp)),
                TraceEvent::SpanExit { name, key, stamp } => match stack.pop() {
                    Some((n, k, s)) if n == name && k == key => {
                        if stamp < s {
                            return Err(format!(
                                "event {i}: span {name}[{key}] exits at {stamp} before its enter stamp {s}"
                            ));
                        }
                    }
                    Some((n, k, _)) => {
                        return Err(format!(
                            "event {i}: span exit {name}[{key}] does not match innermost open span {n}[{k}]"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: span exit {name}[{key}] with no open span"
                        ));
                    }
                },
                _ => {}
            }
        }
        if let Some((n, k, _)) = stack.last() {
            return Err(format!("span {n}[{k}] never exited"));
        }
        Ok(())
    }

    /// Render the event stream as the canonical trace JSON document
    /// (schema `schema_version = 1`, one event per line, integer-only
    /// payloads — byte-identical for identical event streams).
    pub fn to_json(&self) -> String {
        json::write_trace(&self.events)
    }
}

impl TraceSink for CollectingSink {
    fn span_enter(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        self.events.push(TraceEvent::SpanEnter { name, key, stamp });
    }
    fn span_exit(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        self.events.push(TraceEvent::SpanExit { name, key, stamp });
    }
    fn counter_add(&mut self, name: &'static str, key: u64, delta: u64) {
        self.events.push(TraceEvent::Counter { name, key, delta });
    }
    fn histogram_record(&mut self, name: &'static str, key: u64, value: u64) {
        self.events.push(TraceEvent::Histogram { name, key, value });
    }
}

/// Aggregate cost of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total stamp-delta across completed spans (inclusive of
    /// children).
    pub total: u64,
    /// Self cost: total minus the time spent in child spans.
    pub self_total: u64,
}

/// Streaming aggregation sink: keeps totals only, never the raw stream.
///
/// Mismatched or unclosed spans are tolerated (their cost is simply not
/// attributed); [`CollectingSink::check_nesting`] is the strict
/// checker.
#[derive(Debug, Clone, Default)]
pub struct SummarySink {
    counters: BTreeMap<(&'static str, u64), u64>,
    histograms: BTreeMap<&'static str, Log2Histogram>,
    spans: BTreeMap<&'static str, SpanStat>,
    stack: Vec<(&'static str, u64, Stamp, u64)>,
}

impl SummarySink {
    /// An empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter totals, keyed by `(name, key)`, in sorted order.
    pub fn counters(&self) -> &BTreeMap<(&'static str, u64), u64> {
        &self.counters
    }

    /// Total of counter `name` across every key.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|((n, _), _)| *n == name).map(|(_, v)| *v).sum()
    }

    /// Merged histogram per name (keys collapsed), in sorted order.
    pub fn histograms(&self) -> &BTreeMap<&'static str, Log2Histogram> {
        &self.histograms
    }

    /// Aggregate span costs per name, in sorted order.
    pub fn spans(&self) -> &BTreeMap<&'static str, SpanStat> {
        &self.spans
    }

    /// Span names sorted by decreasing self cost (ties by name).
    pub fn spans_by_self_cost(&self) -> Vec<(&'static str, SpanStat)> {
        let mut v: Vec<(&'static str, SpanStat)> =
            self.spans.iter().map(|(n, s)| (*n, *s)).collect();
        v.sort_by(|a, b| b.1.self_total.cmp(&a.1.self_total).then(a.0.cmp(b.0)));
        v
    }
}

impl TraceSink for SummarySink {
    fn span_enter(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        self.stack.push((name, key, stamp, 0));
    }

    fn span_exit(&mut self, name: &'static str, key: u64, stamp: Stamp) {
        match self.stack.pop() {
            Some((n, k, enter, child_total)) if n == name && k == key => {
                let duration = stamp.saturating_sub(enter);
                if let Some((_, _, _, parent_children)) = self.stack.last_mut() {
                    *parent_children += duration;
                }
                let stat = self.spans.entry(name).or_default();
                stat.count += 1;
                stat.total += duration;
                stat.self_total += duration.saturating_sub(child_total);
            }
            Some(frame) => self.stack.push(frame), // mismatched exit: ignore
            None => {}
        }
    }

    fn counter_add(&mut self, name: &'static str, key: u64, delta: u64) {
        *self.counters.entry((name, key)).or_insert(0) += delta;
    }

    fn histogram_record(&mut self, name: &'static str, key: u64, value: u64) {
        let _ = key;
        self.histograms.entry(name).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_sample<S: TraceSink>(sink: &mut S) {
        sink.span_enter("outer", 0, 10);
        sink.counter_add("ops", 0, 3);
        sink.span_enter("inner", 1, 20);
        sink.histogram_record("lat", 0, 5);
        sink.span_exit("inner", 1, 30);
        sink.counter_add("ops", 1, 2);
        sink.span_exit("outer", 0, 50);
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        emit_sample(&mut s);
    }

    #[test]
    fn collecting_sink_totals_and_nesting() {
        let mut s = CollectingSink::new();
        emit_sample(&mut s);
        assert_eq!(s.len(), 7);
        assert_eq!(s.counter_total("ops"), 5);
        assert_eq!(s.counter_total_keyed("ops", 1), 2);
        assert_eq!(s.histogram_of("lat").count(), 1);
        assert!(s.check_nesting().is_ok());
    }

    #[test]
    fn nesting_violations_are_reported() {
        let mut s = CollectingSink::new();
        s.span_enter("a", 0, 1);
        s.span_exit("b", 0, 2);
        assert!(s.check_nesting().is_err());

        let mut unclosed = CollectingSink::new();
        unclosed.span_enter("a", 0, 1);
        assert!(unclosed.check_nesting().is_err());

        let mut backwards = CollectingSink::new();
        backwards.span_enter("a", 0, 10);
        backwards.span_exit("a", 0, 5);
        assert!(backwards.check_nesting().is_err());
    }

    #[test]
    fn summary_sink_attributes_self_cost() {
        let mut s = SummarySink::new();
        emit_sample(&mut s);
        let outer = s.spans()["outer"];
        let inner = s.spans()["inner"];
        assert_eq!(outer, SpanStat { count: 1, total: 40, self_total: 30 });
        assert_eq!(inner, SpanStat { count: 1, total: 10, self_total: 10 });
        assert_eq!(s.counter_total("ops"), 5);
        assert_eq!(s.counters()[&("ops", 1)], 2);
        let ranked = s.spans_by_self_cost();
        assert_eq!(ranked[0].0, "outer");
    }

    #[test]
    fn blanket_mut_ref_impl_delegates() {
        let mut s = CollectingSink::new();
        {
            let mut r: &mut CollectingSink = &mut s;
            assert!(r.enabled());
            emit_sample(&mut r);
        }
        assert_eq!(s.len(), 7);
    }
}
