//! Canonical trace JSON: a byte-stable writer and a strict reader.
//!
//! The format is deliberately tiny — integers and short static strings
//! only, one event per line, fixed field order — so that identical
//! event streams render to identical bytes on every platform (the
//! golden-snapshot tests depend on this) without pulling a serde
//! dependency into the observability layer.
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "events": [
//!     {"type": "span_enter", "name": "engine.superstep", "key": 0, "stamp": 0},
//!     {"type": "counter", "name": "engine.gather_messages", "key": 2, "delta": 14}
//!   ]
//! }
//! ```

use crate::{TraceEvent, SCHEMA_VERSION};

/// Kind of a parsed trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span enter.
    SpanEnter,
    /// Span exit.
    SpanExit,
    /// Counter increment.
    Counter,
    /// Histogram sample.
    Histogram,
}

/// One event read back from a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Metric name.
    pub name: String,
    /// Dimension key.
    pub key: u64,
    /// Stamp, delta, or sample value depending on `kind`.
    pub value: u64,
}

/// A parsed trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Schema version the document declared.
    pub schema_version: u64,
    /// Events in recorded order.
    pub events: Vec<ParsedEvent>,
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let n = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (n >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Render an event stream as the canonical trace document.
pub fn write_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 72);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"events\": [\n");
    for (i, e) in events.iter().enumerate() {
        let (ty, name, key, field, value) = match *e {
            TraceEvent::SpanEnter { name, key, stamp } => ("span_enter", name, key, "stamp", stamp),
            TraceEvent::SpanExit { name, key, stamp } => ("span_exit", name, key, "stamp", stamp),
            TraceEvent::Counter { name, key, delta } => ("counter", name, key, "delta", delta),
            TraceEvent::Histogram { name, key, value } => ("histogram", name, key, "value", value),
        };
        out.push_str("    {\"type\": \"");
        out.push_str(ty);
        out.push_str("\", \"name\": \"");
        push_escaped(&mut out, name);
        out.push_str("\", \"key\": ");
        out.push_str(&key.to_string());
        out.push_str(", \"");
        out.push_str(field);
        out.push_str("\": ");
        out.push_str(&value.to_string());
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                got.map(|&g| g as char)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(n)
                                    .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xf0 => 4,
                        _ if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| "invalid utf-8".to_string())?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        let s = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| "non-utf8 integer".to_string())?;
        s.parse::<u64>().map_err(|e| format!("bad integer {s:?}: {e}"))
    }
}

fn parse_event(c: &mut Cursor<'_>) -> Result<ParsedEvent, String> {
    c.expect_byte(b'{')?;
    let mut ty: Option<String> = None;
    let mut name: Option<String> = None;
    let mut key: u64 = 0;
    let mut value: Option<u64> = None;
    let mut value_field: Option<String> = None;
    loop {
        let field = c.parse_string()?;
        c.expect_byte(b':')?;
        match field.as_str() {
            "type" => ty = Some(c.parse_string()?),
            "name" => name = Some(c.parse_string()?),
            "key" => key = c.parse_u64()?,
            "stamp" | "delta" | "value" => {
                value = Some(c.parse_u64()?);
                value_field = Some(field);
            }
            other => return Err(format!("unknown event field {other:?}")),
        }
        match c.peek() {
            Some(b',') => {
                c.expect_byte(b',')?;
            }
            Some(b'}') => {
                c.expect_byte(b'}')?;
                break;
            }
            other => return Err(format!("expected ',' or '}}' in event, found {other:?}")),
        }
    }
    let ty = ty.ok_or_else(|| "event missing \"type\"".to_string())?;
    let name = name.ok_or_else(|| "event missing \"name\"".to_string())?;
    let value = value.ok_or_else(|| format!("event {ty:?} missing payload field"))?;
    let (kind, expected_field) = match ty.as_str() {
        "span_enter" => (EventKind::SpanEnter, "stamp"),
        "span_exit" => (EventKind::SpanExit, "stamp"),
        "counter" => (EventKind::Counter, "delta"),
        "histogram" => (EventKind::Histogram, "value"),
        other => return Err(format!("unknown event type {other:?}")),
    };
    if value_field.as_deref() != Some(expected_field) {
        return Err(format!(
            "event type {ty:?} carries field {value_field:?}, expected {expected_field:?}"
        ));
    }
    Ok(ParsedEvent { kind, name, key, value })
}

/// Parse a trace document produced by [`write_trace`].
///
/// Strict about structure (it is a reader for one schema, not a general
/// JSON parser) but tolerant of whitespace and event-field order.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut c = Cursor::new(text);
    c.expect_byte(b'{')?;
    let field = c.parse_string()?;
    if field != "schema_version" {
        return Err(format!("expected \"schema_version\" first, found {field:?}"));
    }
    c.expect_byte(b':')?;
    let schema_version = c.parse_u64()?;
    if schema_version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {schema_version} (reader supports {SCHEMA_VERSION})"
        ));
    }
    c.expect_byte(b',')?;
    let field = c.parse_string()?;
    if field != "events" {
        return Err(format!("expected \"events\", found {field:?}"));
    }
    c.expect_byte(b':')?;
    c.expect_byte(b'[')?;
    let mut events = Vec::new();
    if c.peek() == Some(b']') {
        c.expect_byte(b']')?;
    } else {
        loop {
            events.push(parse_event(&mut c)?);
            match c.peek() {
                Some(b',') => {
                    c.expect_byte(b',')?;
                }
                Some(b']') => {
                    c.expect_byte(b']')?;
                    break;
                }
                other => return Err(format!("expected ',' or ']' after event, found {other:?}")),
            }
        }
    }
    c.expect_byte(b'}')?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(format!("trailing bytes after document at {}", c.pos));
    }
    Ok(ParsedTrace { schema_version, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SpanEnter { name: "outer", key: 0, stamp: 10 },
            TraceEvent::Counter { name: "ops", key: 3, delta: 7 },
            TraceEvent::Histogram { name: "lat", key: 0, value: 12345 },
            TraceEvent::SpanExit { name: "outer", key: 0, stamp: 99 },
        ]
    }

    #[test]
    fn writer_is_deterministic_and_round_trips() {
        let events = sample_events();
        let a = write_trace(&events);
        let b = write_trace(&events);
        assert_eq!(a, b);
        let parsed = parse_trace(&a).expect("round trip");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.events.len(), events.len());
        assert_eq!(parsed.events[0].kind, EventKind::SpanEnter);
        assert_eq!(parsed.events[0].name, "outer");
        assert_eq!(parsed.events[0].value, 10);
        assert_eq!(parsed.events[1].kind, EventKind::Counter);
        assert_eq!(parsed.events[1].key, 3);
        assert_eq!(parsed.events[1].value, 7);
        assert_eq!(parsed.events[3].kind, EventKind::SpanExit);
    }

    #[test]
    fn empty_trace_round_trips() {
        let doc = write_trace(&[]);
        let parsed = parse_trace(&doc).expect("empty");
        assert!(parsed.events.is_empty());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{}").is_err());
        assert!(parse_trace("{\"schema_version\": 999, \"events\": []}").is_err());
        let doc = write_trace(&sample_events());
        assert!(parse_trace(&doc[..doc.len() - 3]).is_err());
        assert!(parse_trace(&format!("{doc} extra")).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}e");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001e");
    }
}
