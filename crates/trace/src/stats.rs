//! Exact latency statistics shared by both `sgp-db` simulators.
//!
//! The healthy DES (`sim.rs`) and the fault-injected DES
//! (`fault_sim.rs`) used to carry near-duplicate copies of this code;
//! this module is the single implementation. The float operation order
//! is preserved exactly from the originals so that every checked-in
//! report (and `results_small.txt`) stays byte-identical.

/// Rank-selected percentile of a **sorted** nanosecond sample, as f64.
///
/// Convention: `idx = round((n - 1) · p)`, the same rank the log₂
/// histogram estimate ([`crate::Log2Histogram::quantile`]) targets.
/// Returns 0.0 on an empty sample; `p` is clamped into the valid index
/// range.
pub fn percentile_sorted_ns(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx.min(sorted.len() - 1)).copied().unwrap_or(0) as f64
}

/// Mean/p50/p99/max of a latency sample, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Maximum latency, ms.
    pub max_ms: f64,
}

/// Sorts `latencies_ns` in place and summarizes it in milliseconds.
///
/// All zeros on an empty sample.
pub fn latency_summary_ms(latencies_ns: &mut [u64]) -> LatencySummary {
    latencies_ns.sort_unstable();
    let measured = latencies_ns.len().max(1) as f64;
    let mean_ns = latencies_ns.iter().sum::<u64>() as f64 / measured;
    LatencySummary {
        mean_ms: mean_ns / 1e6,
        p50_ms: percentile_sorted_ns(latencies_ns, 0.50) / 1e6,
        p99_ms: percentile_sorted_ns(latencies_ns, 0.99) / 1e6,
        max_ms: match latencies_ns.last() {
            Some(&l) => l as f64 / 1e6,
            None => 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_rank_convention() {
        let sorted: Vec<u64> = (0..101).collect();
        assert_eq!(percentile_sorted_ns(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted_ns(&sorted, 0.5), 50.0);
        assert_eq!(percentile_sorted_ns(&sorted, 0.99), 99.0);
        assert_eq!(percentile_sorted_ns(&sorted, 1.0), 100.0);
        assert_eq!(percentile_sorted_ns(&[], 0.5), 0.0);
        // Out-of-range p never panics.
        assert_eq!(percentile_sorted_ns(&sorted, 2.0), 100.0);
    }

    #[test]
    fn summary_matches_the_legacy_inline_computation() {
        // Mirrors the expressions previously inlined in sim.rs /
        // fault_sim.rs, bit for bit.
        let mut lat: Vec<u64> = vec![5_000_000, 1_000_000, 3_000_000, 9_000_000];
        let s = latency_summary_ms(&mut lat);
        let mut reference = vec![5_000_000u64, 1_000_000, 3_000_000, 9_000_000];
        reference.sort_unstable();
        let measured = reference.len().max(1) as f64;
        let mean_ns = reference.iter().sum::<u64>() as f64 / measured;
        let pct = |p: f64| -> f64 {
            let idx = ((reference.len() - 1) as f64 * p).round() as usize;
            reference[idx] as f64
        };
        assert_eq!(s.mean_ms.to_bits(), (mean_ns / 1e6).to_bits());
        assert_eq!(s.p50_ms.to_bits(), (pct(0.50) / 1e6).to_bits());
        assert_eq!(s.p99_ms.to_bits(), (pct(0.99) / 1e6).to_bits());
        assert_eq!(s.max_ms.to_bits(), (9_000_000f64 / 1e6).to_bits());
    }

    #[test]
    fn empty_summary_is_zero() {
        let mut empty: Vec<u64> = vec![];
        let s = latency_summary_ms(&mut empty);
        assert_eq!(s, LatencySummary { mean_ms: 0.0, p50_ms: 0.0, p99_ms: 0.0, max_ms: 0.0 });
    }
}
