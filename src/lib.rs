//! # streaming-graph-partitioning
//!
//! A from-scratch Rust reproduction of **"Experimental Analysis of
//! Streaming Algorithms for Graph Partitioning"** (Anil Pacaci &
//! M. Tamer Özsu, SIGMOD 2019).
//!
//! The workspace implements every algorithm the study compares and both
//! execution substrates it measures on:
//!
//! * **Partitioners** ([`partition`]): edge-cut streaming (hash, LDG,
//!   FENNEL, re-streaming variants), vertex-cut streaming (hash, DBH,
//!   Grid, PowerGraph greedy, HDRF), hybrid-cut (hybrid random, Ginger)
//!   and a from-scratch multilevel offline baseline (METIS-like).
//! * **Analytics engine** ([`engine`]): a PowerLyra-like GAS engine
//!   simulator running real PageRank / WCC / SSSP over k simulated
//!   machines with faithful master/mirror communication accounting.
//! * **Graph database** ([`db`]): a JanusGraph-like partitioned
//!   adjacency store with a query router, online queries (1-hop, 2-hop,
//!   shortest path) and a discrete-event cluster simulation for
//!   throughput/latency under concurrent load.
//! * **Datasets** ([`graph`]): deterministic generators standing in for
//!   Twitter, UK2007-05, USA-Road and LDBC SNB.
//! * **Experiments** ([`core`]): suite runners and the paper's decision
//!   tree; the `experiments` binary in `crates/bench` regenerates every
//!   table and figure.
//! * **Fault injection** ([`fault`]): seeded, schema-versioned fault
//!   plans (crashes, stragglers, message loss) that both substrates
//!   replay deterministically — the robustness suite's foundation.
//! * **Observability** ([`trace`]): the deterministic spans / counters /
//!   histograms layer (DESIGN.md §9) — every partitioner, the engine,
//!   and both cluster simulators emit events stamped with simulated
//!   time or logical sequence numbers, never wallclock.
//!
//! ## Quickstart
//!
//! ```
//! use streaming_graph_partitioning::prelude::*;
//!
//! // Generate a Twitter-like graph and partition it with HDRF.
//! let graph = Dataset::Twitter.generate(Scale::Tiny);
//! let config = PartitionerConfig::new(8);
//! let partitioning = partition(&graph, Algorithm::Hdrf, &config, StreamOrder::default());
//!
//! // Structural quality (Fig. 2's metric).
//! let rf = replication_factor(&graph, &partitioning);
//! assert!(rf >= 1.0 && rf <= 8.0);
//!
//! // Run PageRank on a simulated 8-machine cluster (Fig. 1/3).
//! let placement = Placement::build(&graph, &partitioning);
//! let (ranks, report) = run_program(&graph, &placement, &PageRank::new(5), &EngineOptions::default());
//! assert_eq!(ranks.len(), graph.num_vertices());
//! assert!(report.total_messages() > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use sgp_core as core;
pub use sgp_db as db;
pub use sgp_engine as engine;
pub use sgp_fault as fault;
pub use sgp_graph as graph;
pub use sgp_partition as partition;
pub use sgp_trace as trace;

/// Convenient re-exports of the most used items across the workspace.
pub mod prelude {
    pub use sgp_core::config::{Dataset, Scale};
    pub use sgp_core::decision::{recommend, OnlineObjective, WorkloadClass};
    pub use sgp_core::runners::{
        self, churn_suite, ChurnMethod, ChurnRow, ChurnSuiteConfig, OfflineWorkload,
    };
    pub use sgp_db::workload::Skew;
    pub use sgp_db::{
        ClusterSim, DegradedConfig, ElasticPlan, FaultSimConfig, LoadLevel, MirrorDirectory,
        PartitionedStore, Query, SimConfig, SimError, Workload, WorkloadKind,
    };
    pub use sgp_engine::apps::{PageRank, Sssp, Wcc};
    pub use sgp_engine::{
        run_program, run_program_traced, run_program_with_faults, run_program_with_faults_traced,
        EngineOptions, Placement,
    };
    pub use sgp_fault::{FaultPlan, FaultPlanConfig, MembershipKind, RetryPolicy};
    pub use sgp_graph::{
        ChurnConfig, ChurnStream, Edge, EdgeStreamSource, Graph, GraphBuilder, StreamOrder,
        VertexId, VertexStreamSource,
    };
    pub use sgp_partition::metrics::{edge_cut_ratio, load_imbalance, replication_factor};
    pub use sgp_partition::{
        cut_edges, partition, partition_chunked, partition_multi_loader, partition_threaded,
        partition_traced, plan_rebalance, restream_rounds, Algorithm, CutModel, LoaderConfig,
        MigrationConfig, MigrationPlan, MigrationStrategy, PartitionerConfig, Partitioning,
        RestreamOutcome, SnapshotError, StreamInput, StreamingPartitioner,
    };
    pub use sgp_trace::{CollectingSink, NullSink, SummarySink, TraceSink};
}
