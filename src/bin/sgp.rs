//! `sgp` — command-line front end for the streaming-graph-partitioning
//! library.
//!
//! ```text
//! sgp stats <input>
//! sgp partition --alg HDRF --k 8 [--order natural|random|bfs|dfs] [--out FILE] <input>
//! sgp recommend [--online] <input>
//! sgp scaleout [--workload pagerank|wcc|sssp] [--candidates 4,8,16,...] <input>
//! ```
//!
//! `<input>` is either a whitespace edge-list file or a named synthetic
//! dataset: `dataset:twitter`, `dataset:ukweb`, `dataset:usaroad`,
//! `dataset:ldbcsnb` (scale via `SGP_SCALE`).

use std::io::Write;
use streaming_graph_partitioning::core::runners::OfflineWorkload;
use streaming_graph_partitioning::core::scaleout::recommend_scale_out;
use streaming_graph_partitioning::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  sgp stats <input>\n  sgp partition --alg <NAME> --k <K> [--order natural|random|bfs|dfs] [--out FILE] <input>\n  sgp recommend [--online] <input>\n  sgp scaleout [--workload pagerank|wcc|sssp] [--candidates 4,8,16] <input>\n\ninputs: an edge-list file, or dataset:twitter|ukweb|usaroad|ldbcsnb"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn load_graph(input: &str) -> Graph {
    if let Some(name) = input.strip_prefix("dataset:") {
        let dataset = match name.to_ascii_lowercase().as_str() {
            "twitter" => Dataset::Twitter,
            "ukweb" | "uk2007" | "uk2007-05" => Dataset::UkWeb,
            "usaroad" | "usa-road" | "road" => Dataset::UsaRoad,
            "ldbcsnb" | "snb" | "ldbc-snb" => Dataset::LdbcSnb,
            other => fail(&format!("unknown dataset '{other}'")),
        };
        dataset.generate(Scale::from_env())
    } else {
        match streaming_graph_partitioning::graph::io::read_edge_list_file(input) {
            Ok(g) => g,
            Err(e) => fail(&format!("cannot read {input}: {e}")),
        }
    }
}

fn parse_order(s: &str) -> StreamOrder {
    match s.to_ascii_lowercase().as_str() {
        "natural" => StreamOrder::Natural,
        "random" => StreamOrder::default(),
        "bfs" => StreamOrder::Bfs,
        "dfs" => StreamOrder::Dfs,
        other => fail(&format!("unknown stream order '{other}'")),
    }
}

struct Args {
    positional: Vec<String>,
    // BTreeMap keeps diagnostics that iterate flags deterministic.
    flags: std::collections::BTreeMap<String, String>,
    switches: Vec<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // Value-taking flags; everything else is a switch.
            if ["alg", "k", "order", "out", "workload", "candidates"].contains(&name) {
                i += 1;
                match args.get(i) {
                    Some(v) => {
                        flags.insert(name.to_string(), v.clone());
                    }
                    None => fail(&format!("--{name} needs a value")),
                }
            } else {
                switches.push(name.to_string());
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Args { positional, flags, switches }
}

fn write_partition(
    out: &mut dyn Write,
    g: &Graph,
    p: &streaming_graph_partitioning::partition::Partitioning,
    k: usize,
) -> std::io::Result<()> {
    match &p.vertex_owner {
        Some(owner) => {
            writeln!(out, "# vertex partition ({} vertices, k={k})", owner.len())?;
            for (v, part) in owner.iter().enumerate() {
                writeln!(out, "{v} {part}")?;
            }
        }
        None => {
            writeln!(out, "# edge partition ({} edges, k={k})", p.edge_parts.len())?;
            for (e, part) in g.edges().zip(&p.edge_parts) {
                writeln!(out, "{} {} {part}", e.src, e.dst)?;
            }
        }
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv[0].as_str();
    let args = parse_args(&argv[1..]);
    let input = args.positional.first().cloned().unwrap_or_else(|| usage());

    match command {
        "stats" => {
            let g = load_graph(&input);
            let s = streaming_graph_partitioning::graph::GraphStats::of(&g);
            println!("vertices        {}", s.vertices);
            println!("edges           {}", s.edges);
            println!("avg degree      {:.2}", s.avg_degree);
            println!("max degree      {}", s.max_degree);
            println!("degree gini     {:.3}", s.degree_gini);
            println!("power-law R^2   {:.3}", s.powerlaw_fit_r2);
            println!("class           {}", s.classify());
        }
        "partition" => {
            let g = load_graph(&input);
            let alg_name = args.flags.get("alg").map(String::as_str).unwrap_or("HDRF");
            let alg = Algorithm::from_short_name(alg_name)
                .unwrap_or_else(|| fail(&format!("unknown algorithm '{alg_name}'")));
            let k: usize = args
                .flags
                .get("k")
                .map(|v| v.parse().unwrap_or_else(|_| fail("--k must be an integer")))
                .unwrap_or(8);
            let order = args.flags.get("order").map(|s| parse_order(s)).unwrap_or_default();
            let cfg = PartitionerConfig::new(k);
            let start = std::time::Instant::now();
            let p = partition(&g, alg, &cfg, order);
            let elapsed = start.elapsed();
            let q =
                streaming_graph_partitioning::partition::metrics::QualityReport::measure(&g, &p);
            eprintln!(
                "{alg} k={k}: RF={:.3}{} edge-imbalance={:.3} in {:.2?}",
                q.replication_factor,
                q.edge_cut_ratio.map(|e| format!(" ECR={e:.3}")).unwrap_or_default(),
                q.edge_imbalance,
                elapsed
            );
            let mut out: Box<dyn Write> = match args.flags.get("out") {
                Some(path) => Box::new(
                    std::fs::File::create(path)
                        .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}"))),
                ),
                None => Box::new(std::io::stdout().lock()),
            };
            // Surface ENOSPC/EPIPE as a clean error instead of a panic.
            write_partition(&mut out, &g, &p, k)
                .unwrap_or_else(|e| fail(&format!("cannot write partition: {e}")));
        }
        "recommend" => {
            let g = load_graph(&input);
            let rec = if args.switches.iter().any(|s| s == "online") {
                recommend(WorkloadClass::OnlineQueries, None, Some(OnlineObjective::TailLatency))
            } else {
                streaming_graph_partitioning::core::decision::recommend_for_graph(
                    &g,
                    WorkloadClass::OfflineAnalytics,
                )
            };
            println!("recommended algorithm: {}", rec.algorithm);
            for step in &rec.reasoning {
                println!("  - {step}");
            }
        }
        "scaleout" => {
            let g = load_graph(&input);
            let workload = match args
                .flags
                .get("workload")
                .map(String::as_str)
                .unwrap_or("pagerank")
                .to_ascii_lowercase()
                .as_str()
            {
                "pagerank" | "pr" => OfflineWorkload::PageRank,
                "wcc" => OfflineWorkload::Wcc,
                "sssp" => OfflineWorkload::Sssp,
                other => fail(&format!("unknown workload '{other}'")),
            };
            let candidates: Vec<usize> = args
                .flags
                .get("candidates")
                .map(String::as_str)
                .unwrap_or("4,8,16,32")
                .split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|_| fail("bad --candidates list")))
                .collect();
            let report = recommend_scale_out(&g, workload, &candidates, 0.1);
            println!("partitioner: {} (decision tree)", report.algorithm);
            println!("{:<6} {:>12} {:>14} {:>12}", "k", "exec (s)", "network", "comm/comp");
            for p in &report.points {
                println!(
                    "{:<6} {:>12.4} {:>14} {:>12.3}",
                    p.k,
                    p.exec_seconds,
                    streaming_graph_partitioning::core::report::human_bytes(p.network_bytes),
                    p.comm_to_comp
                );
            }
            println!("recommended scale-out factor: k = {}", report.recommended_k);
        }
        _ => usage(),
    }
}
